"""A process-local metrics registry with mergeable snapshots.

Three instrument kinds, Prometheus-shaped (stdlib only):

- :class:`Counter` — monotonically increasing totals, optionally
  labeled (``requests_total{problem="x", outcome="cache_hit"}``);
- :class:`Gauge` — last-write-wins point-in-time values (queue depth,
  workers ready);
- :class:`Histogram` — fixed-bucket latency distributions with
  ``sum``/``count``, from which :func:`quantile` interpolates p50/p95/
  p99 without storing samples.

The registry's unit of exchange is the **snapshot**: a plain picklable
dict of everything observed so far. Snapshots support three algebraic
operations the multi-process service is built on:

- :meth:`MetricsRegistry.snapshot` — read the registry;
- :func:`snapshot_delta` — ``current - previous`` (counters and
  histogram buckets subtract; gauges take the current value), what a
  grading worker ships back over the result pipe after each request;
- :meth:`MetricsRegistry.merge` — fold a snapshot (usually a delta)
  into live instruments, what the parent does with worker deltas so its
  ``/metrics`` covers the whole fleet of worker processes.

Instruments are get-or-create by name, so independent modules can record
into one shared registry without coordination; re-declaring a name with
a different shape (labels, buckets) is a programming error and raises.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): sub-millisecond cache hits through
#: multi-second solver timeouts. ``+Inf`` is implicit.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class _Instrument:
    """Shared name/labels machinery; values keyed by label-value tuples."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002 - prometheus field name
        labelnames: Sequence[str],
        lock: threading.Lock,
    ):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._values: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        # Same length + every declared name present == same name set.
        names = self.labelnames
        try:
            if len(labels) == len(names):
                if len(names) == 1:  # the per-request common case
                    return (str(labels[names[0]]),)
                return tuple(str(labels[name]) for name in names)
        except KeyError:
            pass
        raise ValueError(
            f"metric {self.name!r} takes labels {self.labelnames}, "
            f"got {sorted(labels)}"
        )


class _BoundCounter:
    """A counter cell with its label key pre-resolved (hot-path view)."""

    __slots__ = ("_instrument", "_labelkey")

    def __init__(self, instrument: "Counter", labelkey: Tuple[str, ...]):
        self._instrument = instrument
        self._labelkey = labelkey

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        instrument = self._instrument
        with instrument._lock:
            values = instrument._values
            values[self._labelkey] = (
                values.get(self._labelkey, 0.0) + amount
            )


class _BoundHistogram:
    """A histogram cell with its label key pre-resolved (hot-path view)."""

    __slots__ = ("_instrument", "_labelkey")

    def __init__(self, instrument: "Histogram", labelkey: Tuple[str, ...]):
        self._instrument = instrument
        self._labelkey = labelkey

    def observe(self, value: float) -> None:
        instrument = self._instrument
        index = bisect.bisect_left(instrument.buckets, value)
        with instrument._lock:
            cell = instrument._values.get(self._labelkey)
            if cell is None:
                cell = instrument._values[self._labelkey] = _HistogramCell(
                    len(instrument.buckets)
                )
            cell.counts[index] += 1
            cell.sum += value
            cell.count += 1


class Counter(_Instrument):
    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))

    def labels(self, **labels) -> _BoundCounter:
        """Pre-resolve one label set for repeated cheap ``inc`` calls."""
        return _BoundCounter(self, self._key(labels))


class Gauge(_Instrument):
    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))


class _HistogramCell:
    """Per-label-set histogram state: bucket counts + sum + count."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, num_buckets: int):
        self.counts = [0] * (num_buckets + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(self, name, help, labelnames, lock, buckets):  # noqa: A002
        super().__init__(name, help, labelnames, lock)
        ordered = tuple(sorted(buckets))
        if not ordered:
            raise ValueError("a histogram needs at least one bucket bound")
        self.buckets = ordered

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            cell = self._values.get(key)
            if cell is None:
                cell = self._values[key] = _HistogramCell(len(self.buckets))
            cell.counts[index] += 1
            cell.sum += value
            cell.count += 1

    def cell(self, **labels):
        with self._lock:
            return self._values.get(self._key(labels))

    def labels(self, **labels) -> _BoundHistogram:
        """Pre-resolve one label set for repeated cheap ``observe`` calls."""
        return _BoundHistogram(self, self._key(labels))


def quantile(
    q: float, bucket_bounds: Sequence[float], counts: Sequence[int]
) -> Optional[float]:
    """Estimate the ``q``-quantile of a bucketed distribution.

    Linear interpolation inside the target bucket (Prometheus
    ``histogram_quantile`` semantics). Values landing in the ``+Inf``
    bucket clamp to the highest finite bound. ``None`` when empty.
    """
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    seen = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if seen + count >= rank:
            if index >= len(bucket_bounds):  # the +Inf bucket
                return float(bucket_bounds[-1])
            lower = bucket_bounds[index - 1] if index > 0 else 0.0
            upper = bucket_bounds[index]
            return lower + (upper - lower) * max(0.0, rank - seen) / count
        seen += count
    return float(bucket_bounds[-1])


class MetricsRegistry:
    """Thread-safe, snapshot-able collection of named instruments."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    # -- declaration (get-or-create) ----------------------------------------

    def _declare(self, cls, name, help, labelnames, **kwargs):  # noqa: A002
        # Lock-free fast path: instruments are never removed, so a plain
        # dict read either finds the (immutable-shaped) instrument or
        # falls through to the locked get-or-create. This is the
        # per-request path — every stage observation re-resolves its
        # instrument by name.
        existing = self._instruments.get(name)
        if (
            existing is not None
            and type(existing) is cls
            and existing.labelnames == tuple(labelnames)
        ):
            return existing
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != (
                    tuple(labelnames)
                ):
                    raise ValueError(
                        f"metric {name!r} already declared with a "
                        "different type or label set"
                    )
                return existing
            instrument = cls(name, help, labelnames, self._lock, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:  # noqa: A002
        return self._declare(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:  # noqa: A002
        return self._declare(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._declare(
            Histogram, name, help, labelnames, buckets=tuple(buckets)
        )

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything observed so far, as one plain picklable dict."""
        out: dict = {}
        with self._lock:
            for name, instrument in self._instruments.items():
                entry = {
                    "kind": instrument.kind,
                    "help": instrument.help,
                    "labelnames": instrument.labelnames,
                }
                if instrument.kind == "histogram":
                    entry["buckets"] = instrument.buckets
                    entry["values"] = {
                        key: {
                            "counts": list(cell.counts),
                            "sum": cell.sum,
                            "count": cell.count,
                        }
                        for key, cell in instrument._values.items()
                    }
                else:
                    entry["values"] = dict(instrument._values)
                out[name] = entry
        return out

    def merge(self, snapshot: Optional[dict]) -> None:
        """Fold a snapshot (typically a worker's delta) into this registry.

        Counters and histogram cells add; gauges take the incoming value.
        Unknown instruments are declared on the fly, so the parent needs
        no advance knowledge of what its workers measure.
        """
        if not snapshot:
            return
        for name, entry in snapshot.items():
            kind = entry.get("kind")
            labelnames = tuple(entry.get("labelnames", ()))
            if kind == "counter":
                instrument = self._declare(
                    Counter, name, entry.get("help", ""), labelnames
                )
            elif kind == "gauge":
                instrument = self._declare(
                    Gauge, name, entry.get("help", ""), labelnames
                )
            elif kind == "histogram":
                instrument = self._declare(
                    Histogram,
                    name,
                    entry.get("help", ""),
                    labelnames,
                    buckets=tuple(entry.get("buckets", LATENCY_BUCKETS)),
                )
            else:
                continue
            with self._lock:
                values = instrument._values
                for key, incoming in entry.get("values", {}).items():
                    key = tuple(key)
                    if kind == "counter":
                        values[key] = values.get(key, 0.0) + incoming
                    elif kind == "gauge":
                        values[key] = float(incoming)
                    else:
                        cell = values.get(key)
                        if cell is None:
                            cell = values[key] = _HistogramCell(
                                len(instrument.buckets)
                            )
                        counts = incoming["counts"]
                        if len(counts) != len(cell.counts):
                            raise ValueError(
                                f"histogram {name!r} bucket mismatch"
                            )
                        for index, count in enumerate(counts):
                            cell.counts[index] += count
                        cell.sum += incoming["sum"]
                        cell.count += incoming["count"]

    # -- summaries -----------------------------------------------------------

    def histogram_summary(
        self,
        name: str,
        quantiles: Iterable[float] = (0.5, 0.95, 0.99),
    ) -> Dict[str, dict]:
        """Per-label-set quantiles of one histogram (``/stats`` payload).

        Keys are the joined label values (``"solve"``; ``"x|fixed"`` for
        multi-label instruments); each value carries ``count``, ``sum``
        and one ``pNN`` entry per requested quantile.
        """
        with self._lock:
            instrument = self._instruments.get(name)
            if not isinstance(instrument, Histogram):
                return {}
            cells = list(instrument._values.items())
            bounds = instrument.buckets
        out: Dict[str, dict] = {}
        for key, cell in cells:
            row = {"count": cell.count, "sum": round(cell.sum, 6)}
            for q in quantiles:
                value = quantile(q, bounds, cell.counts)
                row[f"p{int(q * 100)}"] = (
                    round(value, 6) if value is not None else None
                )
            out["|".join(key) if key else ""] = row
        return out


#: The process-global registry every layer records into. Workers ship
#: deltas of *their* process's instance back to the parent, which merges
#: them here — so in-process reads (``/metrics``, ``/stats``) always see
#: the whole fleet.
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    return _GLOBAL


def reset_global_registry() -> MetricsRegistry:
    """Swap in a fresh process-global registry (tests, forked workers)."""
    global _GLOBAL
    _GLOBAL = MetricsRegistry()
    return _GLOBAL


def snapshot_delta(current: dict, previous: Optional[dict]) -> dict:
    """``current - previous`` for monotonic instruments; gauges pass through.

    Label sets absent from ``previous`` appear whole; unchanged entries
    are dropped, so a quiet interval ships (nearly) nothing.
    """
    if not previous:
        return current
    delta: dict = {}
    for name, entry in current.items():
        before = previous.get(name)
        kind = entry.get("kind")
        if before is None or kind == "gauge":
            delta[name] = entry
            continue
        changed = {}
        for key, value in entry.get("values", {}).items():
            prior = before.get("values", {}).get(key)
            if kind == "counter":
                diff = value - (prior or 0.0)
                if diff:
                    changed[key] = diff
            else:  # histogram
                if prior is None:
                    if value["count"]:
                        changed[key] = value
                    continue
                diff_count = value["count"] - prior["count"]
                if diff_count:
                    changed[key] = {
                        "counts": [
                            now - was
                            for now, was in zip(
                                value["counts"], prior["counts"]
                            )
                        ],
                        "sum": value["sum"] - prior["sum"],
                        "count": diff_count,
                    }
        if changed:
            delta[name] = {**entry, "values": changed}
    return delta
