"""Cross-layer observability: metrics, traces, exposition, events.

The stdlib-only telemetry subsystem the serving stack records into:

- :mod:`repro.obs.registry` — process-local metrics registry (counters,
  gauges, fixed-bucket latency histograms) whose snapshots form a
  mergeable delta algebra: worker processes ship per-request deltas back
  over the result pipe and the parent merges them, so one scrape covers
  the whole fleet;
- :mod:`repro.obs.trace` — per-grading request ids and stage timers;
  :func:`observe_grading` is the single record → registry ingestion
  point all executors share;
- :mod:`repro.obs.prometheus` — ``GET /metrics`` text exposition;
- :mod:`repro.obs.events` — structured JSON event log with the
  slow-request threshold;
- :mod:`repro.obs.config` — the ``--obs on|off`` / ``REPRO_OBS`` knob
  (off = no registry writes, no ``metrics`` record key, no events — the
  overhead-ablation state) and ``--slow-ms`` / ``REPRO_SLOW_MS``.

Grading records stay byte-identical under :func:`~repro.service.records.
comparable_record` with telemetry on or off: everything this package
adds to a record lives under the stripped ``metrics`` key.
"""

from repro.obs.config import (
    default_obs,
    default_slow_ms,
    resolve_obs,
    resolve_slow_ms,
    set_default_obs,
    set_default_slow_ms,
    using_obs,
)
from repro.obs.prometheus import CONTENT_TYPE, render
from repro.obs.registry import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    quantile,
    reset_global_registry,
    snapshot_delta,
)
from repro.obs.trace import (
    ENGINE_COUNTERS,
    GRADING_STAGES,
    StageTimer,
    new_request_id,
    observe_grading,
    observe_stage,
)

#: Alias: ``obs.metrics()`` reads naturally at call sites.
metrics = global_registry

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "ENGINE_COUNTERS",
    "GRADING_STAGES",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "StageTimer",
    "default_obs",
    "default_slow_ms",
    "global_registry",
    "metrics",
    "new_request_id",
    "observe_grading",
    "observe_stage",
    "quantile",
    "render",
    "reset_global_registry",
    "resolve_obs",
    "resolve_slow_ms",
    "set_default_obs",
    "set_default_slow_ms",
    "snapshot_delta",
    "using_obs",
]
