"""Structured JSON event logging with a slow-request threshold.

Events go through the stdlib ``logging`` channel ``repro.obs`` as
single-line JSON objects — greppable, machine-parsable, and silent
until a handler is attached (the ``serve`` CLI attaches a stderr
handler; embedded services stay quiet unless the host application opts
in). Each grading event carries the request id, problem, status, wall
time and per-stage breakdown; gradings at or past the slow threshold
(``--slow-ms`` / ``REPRO_SLOW_MS``) are logged at WARNING with
``"slow": true`` so a default WARNING-level root logger still surfaces
the outliers.
"""

from __future__ import annotations

import json
import logging
import time
from typing import Optional

from repro.obs.config import resolve_slow_ms

logger = logging.getLogger("repro.obs")


def emit(event: str, level: int = logging.INFO, **fields) -> None:
    """One structured event; serialization is skipped when nobody listens."""
    if not logger.isEnabledFor(level):
        return
    payload = {"event": event, "ts": round(time.time(), 3), **fields}
    logger.log(level, json.dumps(payload, sort_keys=True, default=str))


def grading_event(
    request_id: str,
    problem: str,
    status: str,
    wall_time_s: float,
    stages: Optional[dict] = None,
    grading_stages: Optional[dict] = None,
    slow_ms: Optional[float] = None,
    **fields,
) -> None:
    """The per-grading event; WARNING + ``slow`` past the threshold.

    ``stages`` (parent-side) and ``grading_stages`` (from the record's
    ``metrics`` key, possibly measured in a worker process) are merged
    into one readable breakdown — but only once the event is known to
    reach a handler, so the silent-by-default path does no dict work.
    """
    threshold_ms = resolve_slow_ms(slow_ms)
    slow = wall_time_s * 1000.0 >= threshold_ms
    level = logging.WARNING if slow else logging.INFO
    if not logger.isEnabledFor(level):
        return
    merged = dict(stages or {})
    if grading_stages:
        merged.update(grading_stages)
    emit(
        "grading",
        level=level,
        request_id=request_id,
        problem=problem,
        status=status,
        wall_time_s=round(wall_time_s, 6),
        stages={name: round(s, 6) for name, s in merged.items()},
        slow=slow,
        **fields,
    )


def attach_stderr_handler(level: int = logging.INFO) -> logging.Handler:
    """Wire ``repro.obs`` events to stderr (the serve CLI's logging)."""
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return handler
