"""Per-grading traces: request ids, stage timers, registry ingestion.

A grading request crosses four layers (client → HTTP facade → service →
worker); the trace layer gives each request one **request id** that
travels with it (the ``X-Request-Id`` header outward, a pipe field
inward) and one **stage-timing record** assembled from both sides:

- parent-side stages, measured by the service: ``canonicalize``,
  ``cache_lookup``, ``queue_wait``;
- grading-side stages, measured inside :func:`~repro.core.api.
  generate_feedback` wherever it runs: ``parse``, ``rewrite``,
  ``solve``, ``render`` — attached to the grading record under its
  ``metrics`` key together with the engine-depth counters (SAT rounds /
  conflicts / decisions, explorer tables vs forker runs, candidate
  executions, fuel consumed).

:func:`observe_grading` is the single ingestion point turning one
finished record into registry updates — every executor's grading path
calls it in-process, so worker-side registries fill up exactly like the
thread executor's and the delta-shipping machinery needs no special
cases.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Dict, Optional

from repro.obs.registry import global_registry

#: Grading-side stage names, in pipeline order (the parent-side stages
#: ``canonicalize``/``cache_lookup``/``queue_wait`` precede them).
GRADING_STAGES = ("parse", "rewrite", "solve", "render")

#: Engine-depth counters lifted from ``EngineResult.stats`` into the
#: registry, as ``repro_<key>_total``.
ENGINE_COUNTERS = (
    "sat_calls",
    "sat_conflicts",
    "sat_decisions",
    "sat_propagations",
    "sat_learned",
    "sat_restarts",
    "table_leaves",
    "table_hits",
    "forker_runs",
    "candidate_runs",
    "fuel_consumed",
)


#: Request-id source: a random 48-bit starting point (distinct per
#: process) plus a thread-safe monotonic counter — ids are unique
#: in-process, collision-unlikely across processes, time-ordered within
#: one, and far cheaper than a UUID on the per-request path.
_ids = itertools.count(int.from_bytes(os.urandom(6), "big") << 16)


def new_request_id() -> str:
    """A fresh request id (log-greppable, collision-unlikely)."""
    return f"{next(_ids) & 0xFFFFFFFFFFFFFFFF:016x}"


class StageTimer:
    """Collects named stage durations for one request or grading."""

    __slots__ = ("stages", "_started")

    def __init__(self):
        self.stages: Dict[str, float] = {}
        self._started: Optional[float] = None

    def start(self) -> None:
        self._started = time.monotonic()

    def stop(self, name: str) -> float:
        """Close the open interval and book it under ``name``."""
        assert self._started is not None
        elapsed = time.monotonic() - self._started
        self._started = None
        self.add(name, elapsed)
        return elapsed

    def add(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def rounded(self, digits: int = 6) -> Dict[str, float]:
        return {
            name: round(seconds, digits)
            for name, seconds in self.stages.items()
        }


def observe_stage(stage: str, seconds: float) -> None:
    """One stage observation into the process registry."""
    global_registry().histogram(
        "repro_grading_stage_seconds",
        help="Per-stage latency of the grading pipeline",
        labelnames=("stage",),
    ).observe(seconds, stage=stage)


def observe_grading(record: dict, engine_name: str = "") -> None:
    """Ingest one finished grading record into the process registry.

    Runs wherever the grading ran (request thread, preforked worker,
    batch worker); the worker-process deltas shipped back to the parent
    are exactly what this function wrote.
    """
    registry = global_registry()
    problem = record.get("problem", "")
    status = record.get("status", "?")
    registry.counter(
        "repro_gradings_total",
        help="Gradings executed (cache hits and dedup followers excluded)",
        labelnames=("problem", "status"),
    ).inc(problem=problem, status=status)
    registry.histogram(
        "repro_grading_seconds",
        help="Grading wall time (the record's wall_time)",
        labelnames=("problem",),
    ).observe(float(record.get("wall_time") or 0.0), problem=problem)

    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        return
    for stage, seconds in (metrics.get("stages") or {}).items():
        observe_stage(stage, seconds)
    engine = metrics.get("engine") or {}
    label = str(engine.get("engine", engine_name or "?"))
    for key in ENGINE_COUNTERS:
        value = engine.get(key)
        if value:
            registry.counter(
                f"repro_{key}_total",
                help=f"Engine-depth counter: {key.replace('_', ' ')}",
                labelnames=("engine",),
            ).inc(float(value), engine=label)
