"""SAT encoding of an M̃PY hole space.

For each hole ``h`` with ``m`` branches we introduce one-hot selection
variables ``x_{h,0} .. x_{h,m-1}`` (exactly one true). Nesting is encoded
with *activation* variables: ``a_h`` holds iff every ancestor choice selects
the branch ``h`` lives in. A *cost input* ``t_h`` is defined for every
non-free hole as ``t_h ↔ a_h ∧ ¬x_{h,0}`` — exactly "this correction is
applied" — and the cost inputs feed a sequential counter whose outputs the
CEGISMIN loop bounds by assumption (Algorithm 1's minimize hole).

Phases are biased toward defaults so the first SAT models stay close to the
student's original program.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.sat import CountingNetwork, Solver, encode_at_most_one
from repro.tilde.nodes import HoleRegistry


class HoleEncoding:
    """One-hot + activation + cost-counter encoding of a hole registry."""

    def __init__(self, solver: Solver, registry: HoleRegistry):
        self.solver = solver
        self.registry = registry
        self.branch_vars: Dict[int, List[int]] = {}
        self.activation_vars: Dict[int, int] = {}
        self.cost_inputs: List[int] = []
        self.cost_holes: List[int] = []
        self._encode()
        self.network = CountingNetwork(solver, self.cost_inputs)

    # -- encoding ------------------------------------------------------------

    def _encode(self) -> None:
        holes = sorted(self.registry.holes(), key=lambda h: h.cid)
        for info in holes:
            variables = [
                self.solver.new_var(preferred=(index == 0))
                for index in range(info.arity)
            ]
            self.branch_vars[info.cid] = variables
            self.solver.add_clause(variables)  # at least one branch
            # At most one branch: pairwise for narrow holes, sequential
            # ladder for wide ones (see repro.sat.cardinality).
            encode_at_most_one(self.solver, variables)
        # Activation variables need parents encoded first; process in
        # dependency order (parents are holes too, any order works because
        # we create all branch vars above).
        for info in holes:
            a = self.solver.new_var(preferred=True)
            self.activation_vars[info.cid] = a
        for info in holes:
            a = self.activation_vars[info.cid]
            if info.parent is None:
                self.solver.add_clause([a])
                continue
            parent_cid, branch = info.parent
            parent_sel = self.branch_vars[parent_cid][branch]
            parent_act = self.activation_vars[parent_cid]
            # a ↔ parent_sel ∧ parent_act
            self.solver.add_clause([-a, parent_sel])
            self.solver.add_clause([-a, parent_act])
            self.solver.add_clause([-parent_sel, -parent_act, a])
        for info in holes:
            if info.free:
                continue
            t = self.solver.new_var(preferred=False)
            a = self.activation_vars[info.cid]
            default = self.branch_vars[info.cid][0]
            # t ↔ a ∧ ¬default
            self.solver.add_clause([-t, a])
            self.solver.add_clause([-t, -default])
            self.solver.add_clause([-a, default, t])
            self.cost_inputs.append(t)
            self.cost_holes.append(info.cid)

    # -- model interface --------------------------------------------------------

    def reset_phases(self) -> None:
        """Re-bias decision phases toward the zero-cost defaults.

        CDCL phase saving gradually overwrites the initial preference as
        conflicts accumulate, drifting proposals away from the student's
        original program; re-asserting the bias before each synthesis call
        keeps the search anchored near-default, which is where minimal
        corrections live. (Measured: ~100x on the Fig. 2(a) full-model
        workload versus letting phases drift.)
        """
        for variables in self.branch_vars.values():
            for index, var in enumerate(variables):
                self.solver.set_preferred(var, index == 0)
        for var in self.activation_vars.values():
            self.solver.set_preferred(var, True)
        for var in self.cost_inputs:
            self.solver.set_preferred(var, False)

    def assignment_from_model(self) -> Dict[int, int]:
        """Decode the solver's current model into a canonical assignment."""
        assignment: Dict[int, int] = {}
        for cid, variables in self.branch_vars.items():
            for index, var in enumerate(variables):
                if self.solver.model_value(var):
                    if index != 0:
                        assignment[cid] = index
                    break
        return assignment

    def block_cube(self, cube: Dict[int, int]) -> None:
        """Forbid every assignment agreeing with ``cube`` (a failed run)."""
        clause = [
            -self.branch_vars[cid][branch] for cid, branch in sorted(cube.items())
        ]
        if not clause:
            # The failing run read no holes at all: the program is wrong
            # independently of any correction — the space is empty.
            self.solver.add_clause([])
            return
        self.solver.add_clause(clause)

    def block_cubes(self, cubes: Iterable[Dict[int, int]]) -> int:
        """Block a batch of cubes (e.g. every failing leaf of an
        exploration table); returns how many clauses were added."""
        count = 0
        for cube in cubes:
            self.block_cube(cube)
            count += 1
        return count

    def block_assignment(self, assignment: Dict[int, int]) -> None:
        """Forbid one exact (canonical) assignment."""
        clause = []
        for cid, variables in self.branch_vars.items():
            branch = assignment.get(cid, 0)
            clause.append(-variables[branch])
        self.solver.add_clause(clause)

    def bound_assumptions(self, max_cost: int) -> List[int]:
        """Assumption literals for "at most ``max_cost`` corrections"."""
        return self.network.bound_assumption(max_cost)

    def model_cost(self) -> int:
        return self.network.count_true(self.solver.model_value)
