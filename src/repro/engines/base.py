"""Common engine interface and result type."""

from __future__ import annotations

from typing import TYPE_CHECKING

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.mpy import nodes as N
from repro.tilde.nodes import HoleRegistry

if TYPE_CHECKING:
    from repro.core.spec import ProblemSpec

#: Engine statuses.
FIXED = "fixed"  # a minimal correction set was found
NO_FIX = "no_fix"  # the search space contains no equivalent program
TIMEOUT = "timeout"  # gave up on the clock (paper: 4-minute budget)
EXHAUSTED = "exhausted"  # enumeration cap reached (enumerative engine only)


@dataclass
class EngineResult:
    """Outcome of one synthesis run."""

    status: str
    assignment: Optional[Dict[int, int]] = None
    cost: Optional[int] = None
    #: True when the returned fix is proven minimal (CEGISMIN ran to UNSAT).
    minimal: bool = False
    iterations: int = 0
    counterexamples: int = 0
    wall_time: float = 0.0
    stats: dict = field(default_factory=dict)

    @property
    def fixed(self) -> bool:
        return self.status == FIXED


class Engine(abc.ABC):
    """A search strategy over an M̃PY candidate space."""

    name: str = "engine"

    @abc.abstractmethod
    def solve(
        self,
        tilde: N.Module,
        registry: HoleRegistry,
        spec: ProblemSpec,
        verifier,
        timeout_s: float = 60.0,
    ) -> EngineResult:
        """Find a minimal-cost hole assignment equivalent to the reference."""
