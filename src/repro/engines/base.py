"""Common engine interface, result type, and the candidate space.

:class:`CandidateSpace` is the engines' shared view of one M̃PY search
space: the tilde module, its hole registry, and an execution substrate
(compiled closures by default, the tree-walker as escape hatch). It
serves both access patterns the engines need:

- **per-candidate** — :meth:`CandidateSpace.outcome` runs one assignment
  on one input (an array write + a closure call on the compiled backend);
- **per-input** — :meth:`CandidateSpace.explore` forks at every choice
  point the input's execution reads and returns the complete
  (touched-hole cube → outcome) table for that input, the all-candidates-
  at-once view CEGISMIN blocks counterexamples with and the enumerative
  engine intersects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.compile import COMPILED, compile_program, resolve_backend
from repro.explore import (
    ExplorationTable,
    Outcome,
    PathForker,
    domains_from_registry,
    outcome_of,
)
from repro.mpy import nodes as N
from repro.symbolic.recorder import InterpPathRunner, RecordingInterpreter
from repro.tilde.nodes import HoleRegistry

if TYPE_CHECKING:
    from repro.core.spec import ProblemSpec
    from repro.resilience.deadline import Deadline

#: Engine statuses.
FIXED = "fixed"  # a minimal correction set was found
NO_FIX = "no_fix"  # the search space contains no equivalent program
TIMEOUT = "timeout"  # gave up on the clock (paper: 4-minute budget)
EXHAUSTED = "exhausted"  # enumeration cap reached (enumerative engine only)


@dataclass
class EngineResult:
    """Outcome of one synthesis run."""

    status: str
    assignment: Optional[Dict[int, int]] = None
    cost: Optional[int] = None
    #: True when the returned fix is proven minimal (CEGISMIN ran to UNSAT).
    minimal: bool = False
    iterations: int = 0
    counterexamples: int = 0
    wall_time: float = 0.0
    stats: dict = field(default_factory=dict)
    #: Degraded feedback on ``timeout``: JSON-safe failing tests of the
    #: submission *as written* (assignment ∅) over the verifier's
    #: canonical input prefix — deterministic regardless of where the
    #: solve stopped. None on every other status.
    failing: Optional[list] = None

    @property
    def fixed(self) -> bool:
        return self.status == FIXED


def _has_top_level_state(module: N.Module) -> bool:
    return any(not isinstance(stmt, N.FuncDef) for stmt in module.body)


class _ProgramPathRunner:
    """Adapts a :class:`~repro.compile.compiler.CompiledProgram` to the
    forker's two-method runner protocol (entry point bound once)."""

    __slots__ = ("program", "function")

    def __init__(self, program, function: str):
        self.program = program
        self.function = function

    def run_recorded(self, args: tuple, assignment: Dict[int, int]):
        return self.program.run_recorded(self.function, args, assignment)

    def cube(self) -> Dict[int, int]:
        return self.program.cube()


class CandidateSpace:
    """One M̃PY candidate space, executable and explorable.

    Under the default ``compiled`` backend the module is lowered to
    closures exactly once; switching candidates is an assignment-array
    write (zero recompilation). The ``interp`` backend is the tree-walker
    escape hatch, reusing one interpreter when the module carries no
    top-level state. ``backend=None`` defers to the process default
    (:func:`repro.compile.resolve_backend`).
    """

    def __init__(
        self,
        tilde: N.Module,
        function: str,
        fuel: int,
        registry: Optional[HoleRegistry] = None,
        backend: Optional[str] = None,
        compare_stdout: bool = False,
    ):
        self.tilde = tilde
        self.function = function
        self.fuel = fuel
        self.registry = registry
        self.compare_stdout = compare_stdout
        self.backend = resolve_backend(backend)
        self.stateful = _has_top_level_state(tilde)
        self._interp: Optional[RecordingInterpreter] = None
        self._program = (
            compile_program(tilde, fuel=fuel)
            if self.backend == COMPILED
            else None
        )
        self._forker: Optional[PathForker] = None
        #: Telemetry: direct candidate executions through :meth:`run` and
        #: the fuel they burned (forker runs are counted by the tables).
        self.run_count = 0
        self.fuel_consumed = 0

    # -- per-candidate execution --------------------------------------------

    def run(self, assignment: Dict[int, int], args: tuple):
        """Run one candidate on one input; the cube record covers the
        whole run (top-level re-execution included)."""
        self.run_count += 1
        try:
            if self._program is not None:
                return self._program.run_recorded(
                    self.function, args, assignment
                )
            if self.stateful or self._interp is None:
                # Two-phase construction: __init__ executes the module top
                # level and can raise; installing the instance first keeps
                # its partial touch record readable through cube() (callers
                # treat the raise as this run's error outcome and then read
                # the failing path's cube).
                interp = RecordingInterpreter.__new__(RecordingInterpreter)
                self._interp = interp
                interp.__init__(self.tilde, assignment, fuel=self.fuel)
                return interp.call(self.function, args)
            return self._interp.run(
                self.function, args, assignment=assignment
            )
        finally:
            executor = (
                self._program if self._program is not None else self._interp
            )
            remaining = getattr(executor, "fuel", None)
            if isinstance(remaining, int):
                self.fuel_consumed += self.fuel - max(0, remaining)

    def cube(self) -> Dict[int, int]:
        """The holes the last :meth:`run` read, insertion-ordered."""
        if self._program is not None:
            return self._program.cube()
        assert self._interp is not None
        return self._interp.cube()

    def outcome(self, assignment: Dict[int, int], args: tuple) -> Outcome:
        """The observable outcome of one candidate on one input."""
        return outcome_of(
            lambda: self.run(assignment, args), self.compare_stdout
        )

    # -- per-input exploration ----------------------------------------------

    def forker(self) -> PathForker:
        """The path forker over this space (requires a registry)."""
        if self._forker is None:
            if self.registry is None:
                raise ValueError(
                    "exploration needs the hole registry; construct the "
                    "CandidateSpace with registry="
                )
            arity, cost = domains_from_registry(self.registry)
            if self._program is not None:
                runner = _ProgramPathRunner(self._program, self.function)
            else:
                runner = InterpPathRunner(
                    self.tilde, self.function, self.fuel
                )
            self._forker = PathForker(
                runner, arity, cost, compare_stdout=self.compare_stdout
            )
        return self._forker

    def explore(
        self,
        args: tuple,
        pinned: Optional[Dict[int, int]] = None,
        budget: Optional[int] = None,
        fork: Optional[Callable[[int], bool]] = None,
        deadline: Optional[float] = None,
        max_leaves: Optional[int] = None,
    ) -> ExplorationTable:
        """The exploration table of ``args`` (see :class:`PathForker`)."""
        return self.forker().explore(
            args,
            pinned=pinned,
            budget=budget,
            fork=fork,
            deadline=deadline,
            max_leaves=max_leaves,
        )

    def explore_free_region(
        self,
        args: tuple,
        assignment: Dict[int, int],
        deadline: Optional[float] = None,
    ) -> ExplorationTable:
        """The table of ``assignment``'s free-hole neighborhood on ``args``.

        Costly holes are pinned at the candidate's branches; only free
        rule-RHS holes (which carry no cost pressure, so the SAT solver
        would otherwise propose their siblings one by one) fan out. The
        leaves cover *every* assignment agreeing with the candidate on
        its non-free holes — the complete, uncapped replacement for
        per-sibling refutation.
        """
        assert self.registry is not None
        registry = self.registry
        pinned = {
            cid: branch
            for cid, branch in assignment.items()
            if cid in registry and not registry.info(cid).free
        }
        free = {
            info.cid for info in registry.holes() if info.free
        }
        return self.explore(
            args,
            pinned=pinned,
            fork=free.__contains__,
            deadline=deadline,
        )


class Engine(abc.ABC):
    """A search strategy over an M̃PY candidate space."""

    name: str = "engine"

    @abc.abstractmethod
    def solve(
        self,
        tilde: N.Module,
        registry: HoleRegistry,
        spec: ProblemSpec,
        verifier,
        timeout_s: float = 60.0,
        backend: Optional[str] = None,
        deadline: Optional["Deadline"] = None,
    ) -> EngineResult:
        """Find a minimal-cost hole assignment equivalent to the reference.

        ``backend`` pins the candidate-side execution substrate for this
        solve (``None`` = process default), mirroring the ``backend=``
        the :class:`~repro.engines.verify.BoundedVerifier` already takes
        for the reference side.

        ``deadline`` is the request's end-to-end
        :class:`~repro.resilience.deadline.Deadline`; when given it caps
        the solve *in addition to* ``timeout_s`` (queue wait and warmup
        already spent from it). ``None`` means the engine starts a fresh
        ``timeout_s`` clock — the standalone-call behavior.
        """

    def config_label(self) -> str:
        """The cache-key identity of this engine configuration.

        The engine name plus every constructor parameter that differs
        from the defaults, e.g. ``cegismin[max_cost=1]`` — two
        differently-configured instances of one engine class must never
        address the same cache entry (a ``no_fix`` under a tight budget
        is not a verdict about the generous run). Relies on engines
        being default-constructible and storing only configuration in
        instance attributes. ``explorer`` is excluded: the cache key
        encodes it separately (:func:`repro.service.cache.engine_label`).
        """
        defaults = vars(type(self)())
        extras = ",".join(
            f"{key}={value}"
            for key, value in sorted(vars(self).items())
            if key != "explorer" and defaults.get(key, value) != value
        )
        return f"{self.name}[{extras}]" if extras else self.name
