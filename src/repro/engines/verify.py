"""Exhaustive bounded equivalence checking against a reference.

The paper's SKETCH harness "compares the outputs of the translated student
and reference implementations on all inputs of a bounded size" (Section
2.3) — with 4-bit integers and lists up to length 4, over 2^16 inputs. We
do the same by enumeration: precompute the reference outcome on every input
of the bounded space once per problem, then sweep candidates until the
first mismatch.

An *outcome* is ``("ok", value, stdout)`` or ``("error",)``: student code
that raises (bad index, type confusion, non-termination by fuel) is
observably different from code that returns. Inputs on which the reference
itself errors are treated as outside the problem's precondition and are
excluded from the space (e.g. negative exponents for ``recurPower``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import time
from typing import Callable, Iterable, List, Optional, Tuple

from repro.compile import make_executor

# The outcome format lives in the explore layer (tables compare leaves
# against reference outcomes); re-exported here for the engine-side API.
from repro.explore.outcomes import (  # noqa: F401  (re-exports)
    ERROR,
    OK,
    Outcome,
    outcome_of,
    outcomes_match,
    typed_equal,
)

if TYPE_CHECKING:
    from repro.core.spec import ProblemSpec
    from repro.explore.table import ExplorationTable, Leaf


def describe_outcome(outcome: Outcome) -> str:
    """One outcome as a short human/JSON-safe string (degraded reports)."""
    if outcome[0] == ERROR:
        return "error"
    text = repr(outcome[1])
    if len(outcome) > 2 and outcome[2]:
        text += f" (stdout: {outcome[2]!r})"
    return text


def _input_size_key(args: tuple) -> tuple:
    """Order inputs smallest-first so counterexample sweeps fail fast."""

    def size(value) -> int:
        if isinstance(value, str):
            return 1 + len(value)
        if isinstance(value, (list, tuple)):
            return 1 + sum(size(v) for v in value)
        if isinstance(value, bool):
            return 0
        if isinstance(value, int):
            return abs(value)
        return 1

    return (sum(size(a) for a in args), repr(args))


def hashable_args(args: tuple):
    def freeze(value):
        if isinstance(value, list):
            return ("list",) + tuple(freeze(v) for v in value)
        if isinstance(value, tuple):
            return ("tuple",) + tuple(freeze(v) for v in value)
        if isinstance(value, dict):
            return ("dict",) + tuple(
                (freeze(k), freeze(v)) for k, v in sorted(value.items())
            )
        return value

    return tuple(freeze(a) for a in args)


class BoundedVerifier:
    """Precomputed reference outcomes + candidate sweeps for one problem.

    ``backend`` selects the reference-side execution substrate (compiled
    closures by default; ``None`` defers to the process-wide default).
    """

    def __init__(self, spec: ProblemSpec, backend: Optional[str] = None):
        self.spec = spec
        self.backend = backend
        self._inputs: Optional[List[tuple]] = None
        #: ``(args, frozen key, expected outcome)`` triples, parallel to
        #: ``self._inputs`` — keys are computed once here so candidate
        #: sweeps never re-freeze inputs.
        self._triples: List[tuple] = []
        self._expected: dict = {}
        self._max_reference_steps = 0

    # -- reference side ------------------------------------------------------

    def _materialize(self) -> None:
        if self._inputs is not None:
            return
        reference = make_executor(
            self.spec.reference_module(),
            fuel=self.spec.fuel,
            backend=self.backend,
        )
        inputs: List[tuple] = []
        for args in sorted(self.spec.input_space(), key=_input_size_key):
            outcome = outcome_of(
                lambda: reference.call(self.spec.function, args),
                self.spec.compare_stdout,
            )
            self._max_reference_steps = max(
                self._max_reference_steps, self.spec.fuel - reference.fuel
            )
            if outcome[0] == ERROR:
                continue  # outside the problem's precondition
            key = hashable_args(args)
            inputs.append(args)
            self._triples.append((args, key, outcome))
            self._expected[key] = outcome
        self._inputs = inputs

    @property
    def candidate_fuel(self) -> int:
        """Step budget for candidate runs.

        Calibrated from the reference's worst-case step count over the
        bounded space: generous enough for any reasonable algorithm (16x
        the reference, floor 512), small enough that non-terminating
        student loops (``i += 0``) fail in microseconds instead of
        exhausting a fixed multi-thousand-step budget on every run.
        """
        self._materialize()
        return min(self.spec.fuel, max(512, 16 * self._max_reference_steps))

    @property
    def inputs(self) -> List[tuple]:
        self._materialize()
        assert self._inputs is not None
        return self._inputs

    def expected(self, args: tuple) -> Outcome:
        self._materialize()
        return self._expected[hashable_args(args)]

    def seed_inputs(self, count: int) -> List[tuple]:
        """A small prefix of the space, useful as initial CEGIS inputs."""
        return self.inputs[:count]

    # -- candidate side ---------------------------------------------------------

    def find_counterexample(
        self,
        run: Callable[[tuple], Outcome],
        priority: Iterable[tuple] = (),
        deadline: Optional[float] = None,
    ) -> Optional[tuple]:
        """First input where ``run`` disagrees with the reference.

        ``priority`` inputs (cached past counterexamples) are checked first.
        Returns None when the candidate matches on the whole bounded space.
        Raises TimeoutError when ``deadline`` (time.monotonic) passes.
        """
        self._materialize()
        seen = set()
        for args in priority:
            key = hashable_args(args)
            if key in seen or key not in self._expected:
                continue
            seen.add(key)
            if not outcomes_match(self._expected[key], run(args)):
                return args
        for index, (args, key, expected) in enumerate(self._triples):
            if deadline is not None and index % 256 == 0:
                if time.monotonic() > deadline:
                    raise TimeoutError("verification deadline exceeded")
            if key in seen:
                continue
            if not outcomes_match(expected, run(args)):
                return args
        return None

    def is_equivalent(self, run: Callable[[tuple], Outcome]) -> bool:
        return self.find_counterexample(run) is None

    def failing_tests(
        self,
        run: Callable[[tuple], Outcome],
        limit: int = 3,
        max_inputs: int = 64,
    ) -> List[dict]:
        """JSON-safe mismatches of ``run`` on a prefix of the space.

        The degraded-feedback payload: when a solve times out or a
        breaker short-circuits, the submission's behavior on concrete
        inputs is still real feedback. Bounded by ``max_inputs`` scans
        and ``limit`` reported rows, and deterministic — inputs go in
        the verifier's canonical order, independent of where any solve
        stopped — so degraded records are byte-identical across
        executors and retries.
        """
        self._materialize()
        failing: List[dict] = []
        for args, _key, expected in self._triples[:max_inputs]:
            try:
                outcome = run(args)
            except Exception:
                outcome = (ERROR,)
            if outcomes_match(expected, outcome):
                continue
            failing.append(
                {
                    "input": repr(args),
                    "expected": describe_outcome(expected),
                    "got": describe_outcome(outcome),
                }
            )
            if len(failing) >= limit:
                break
        return failing

    # -- table side ---------------------------------------------------------

    def table_verdict(
        self, table: "ExplorationTable"
    ) -> "Tuple[List[Leaf], List[Leaf]]":
        """Split an exploration table's leaves against the reference.

        Returns ``(matching, failing)``: each failing leaf's cube is a
        whole region of candidates refuted on the table's input in one
        step — the cube-level counterpart of a per-candidate sweep.
        """
        return table.split(self.expected(table.args))
