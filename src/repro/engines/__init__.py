"""Synthesis engines: search for minimal corrections over M̃PY spaces.

- :mod:`repro.engines.cegismin` — the paper's approach: CEGIS with a SAT
  backend extended for cost minimization (Algorithm 1, CEGISMIN);
- :mod:`repro.engines.enumerative` — the brute-force baseline the paper
  argues against (mutation-style enumeration, Section 7.2);
- :mod:`repro.engines.verify` — exhaustive bounded equivalence checking
  against the reference implementation (the SKETCH harness stand-in).

Both engines search a :class:`~repro.engines.base.CandidateSpace` — the
tilde module plus registry on an execution substrate — and, with the
explorer on, consume per-input exploration tables from
:mod:`repro.explore` instead of sweeping candidates one at a time.
"""

from repro.engines.base import CandidateSpace, EngineResult, Engine
from repro.engines.cegismin import CegisMinEngine
from repro.engines.enumerative import EnumerativeEngine
from repro.engines.verify import BoundedVerifier, Outcome, outcomes_match

ENGINES = ("cegismin", "enumerative")


def engine_by_name(name: str) -> Engine:
    """A fresh engine instance for a configuration name.

    Engines carry per-solve state (SAT instance, statistics), so every
    grading gets its own instance; the batch runner's worker processes
    and the feedback server's request threads both build engines through
    this single registry.
    """
    if name == "cegismin":
        return CegisMinEngine()
    if name == "enumerative":
        return EnumerativeEngine()
    raise ValueError(f"unknown engine {name!r}; expected one of {ENGINES}")


__all__ = [
    "ENGINES",
    "engine_by_name",
    "Engine",
    "EngineResult",
    "CandidateSpace",
    "CegisMinEngine",
    "EnumerativeEngine",
    "BoundedVerifier",
    "Outcome",
    "outcomes_match",
]
