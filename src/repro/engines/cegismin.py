"""CEGISMIN: counterexample-guided inductive synthesis with minimization.

This is the paper's Algorithm 1 on our substrate:

- **Synthesis phase** — the SAT solver proposes a hole assignment
  consistent with every behavior observed so far (blocking clauses from
  failed runs) and with the current cost bound (assumption on the counting
  network). This mirrors ``Synth(σ, Φ)``.
- **Verification phase** — the candidate is swept over the full bounded
  input space. A disagreeing input is the new counterexample state σ
  (``Verify(φ)``).
- **Minimization** — when verification succeeds, instead of returning, the
  loop records the solution φ_p and adds the constraint "cost < cost(φ)"
  (the paper's ``minHole < minHoleVal``), continuing until the constraints
  become unsatisfiable; the previous solution is then a *provably minimal*
  correction (Algorithm 1 lines 5–7, 11–13).

Failed runs are generalized before blocking: execution under a concrete
assignment only reads the holes on its path, so the blocking clause covers
the whole cube of assignments that agree on those holes. With the explorer
on (the default), each failure goes further: the path forker re-runs the
counterexample input over the failing candidate's **free-hole
neighborhood** — every assignment agreeing with the candidate on its
costly holes — and every failing leaf of the resulting exploration table
is blocked in the same SAT round. Free rule-RHS holes carry no cost
pressure, so without the tables the solver would propose their siblings
one by one; with them the whole failing region vanishes at once,
uncapped, visiting only *reachable* branch combinations (the concrete
counterpart of what SKETCH's symbolic encoding rules out in a single
conflict). ``--explorer off`` is the ablation: one generalized cube per
failing candidate, the per-candidate sweep the tables replace.

``incremental=False`` rebuilds the solver at every cost bound instead of
reusing learned state — the ablation the paper's incremental-solving claim
(Section 4.2) is benchmarked against. SAT statistics are accumulated
across rebuilds, so ``EngineResult.stats`` reports whole-run totals in
both modes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.engines.base import (
    FIXED,
    NO_FIX,
    TIMEOUT,
    CandidateSpace,
    Engine,
    EngineResult,
)
from repro.engines.encoding import HoleEncoding
from repro.engines.verify import BoundedVerifier, outcomes_match
from repro.explore import resolve_explorer
from repro.mpy import nodes as N
from repro.sat import SAT, Solver
from repro.tilde.nodes import HoleRegistry
from repro.tilde.semantics import assignment_cost

if TYPE_CHECKING:
    from repro.core.spec import ProblemSpec
    from repro.resilience.deadline import Deadline


class CegisMinEngine(Engine):
    """The paper's solver: CEGIS + SAT + incremental cost minimization."""

    name = "cegismin"

    def __init__(
        self,
        seed_inputs: int = 4,
        max_iterations: int = 200_000,
        incremental: bool = True,
        max_cost: int = 5,
        strategy: str = "ascend",
        explorer: Optional[bool] = None,
    ):
        self.seed_inputs = seed_inputs
        self.max_iterations = max_iterations
        self.incremental = incremental
        #: Give up beyond this many corrections (the paper's distribution
        #: tops out at 4, Fig. 14(a)); larger rewrites are the "big
        #: conceptual errors" the tool is not meant to fix.
        self.max_cost = max_cost
        #: "ascend": iterative deepening on the correction cost — each level
        #: is exhausted before the next, so the first verified candidate is
        #: provably minimal. "descend": the paper's Algorithm 1 order (find
        #: any solution, then constrain cost < best until UNSAT); with a
        #: concrete-execution backend this direction explores far more of
        #: the space, which is exactly what the ablation benchmark shows.
        self.strategy = strategy
        #: Table-based blocking on (None = process default): block every
        #: failing leaf of a counterexample's free-hole region per round.
        self.explorer = explorer

    def solve(
        self,
        tilde: N.Module,
        registry: HoleRegistry,
        spec: ProblemSpec,
        verifier: BoundedVerifier,
        timeout_s: float = 60.0,
        backend: Optional[str] = None,
        deadline: Optional["Deadline"] = None,
    ) -> EngineResult:
        start = time.monotonic()
        # One float instant feeds every layer below (forker, verifier,
        # SAT solver): the engine's own budget, tightened by whatever the
        # request's end-to-end deadline has left.
        deadline = (
            min(start + timeout_s, deadline.at)
            if deadline is not None
            else start + timeout_s
        )
        explorer = resolve_explorer(self.explorer)
        space = CandidateSpace(
            tilde,
            spec.student_function,
            verifier.candidate_fuel,
            registry=registry,
            backend=backend,
            compare_stdout=spec.compare_stdout,
        )

        solver = Solver()
        encoding = HoleEncoding(solver, registry)
        blocked: List[Dict[int, int]] = []  # for non-incremental rebuilds
        blocked_keys: Set[frozenset] = set()
        #: SAT statistics of solvers discarded by non-incremental rebuilds;
        #: reported totals are base + the live solver (whole-run numbers).
        sat_base = {key: 0 for key in solver.stats}

        cex_cache: List[tuple] = list(verifier.seed_inputs(self.seed_inputs))
        best: Optional[Dict[int, int]] = None
        best_cost: Optional[int] = None
        iterations = 0
        sat_calls = 0
        table_leaves = 0
        forker_runs = 0

        def result(status: str, minimal: bool) -> EngineResult:
            failing = None
            if status == TIMEOUT:
                # Degraded feedback: what the submission as written does
                # on the verifier's first inputs — deterministic and a
                # few bounded runs, well inside the timeout grace.
                try:
                    failing = verifier.failing_tests(
                        lambda args: space.outcome({}, args)
                    )
                except Exception:
                    failing = None
            return EngineResult(
                status=status,
                assignment=best,
                cost=best_cost,
                minimal=minimal,
                failing=failing,
                iterations=iterations,
                counterexamples=len(cex_cache),
                wall_time=time.monotonic() - start,
                stats={
                    "sat_calls": sat_calls,
                    "blocked_cubes": len(blocked),
                    "table_leaves": table_leaves,
                    "forker_runs": forker_runs,
                    "candidate_runs": space.run_count,
                    "fuel_consumed": space.fuel_consumed,
                    "sat_conflicts": sat_base["conflicts"]
                    + solver.stats["conflicts"],
                    "sat_decisions": sat_base["decisions"]
                    + solver.stats["decisions"],
                    "sat_propagations": sat_base["propagations"]
                    + solver.stats["propagations"],
                    "sat_learned": sat_base["learned"]
                    + solver.stats["learned"],
                    "sat_restarts": sat_base["restarts"]
                    + solver.stats["restarts"],
                    "engine": self.name,
                    "incremental": self.incremental,
                    "explorer": explorer,
                },
            )

        def block(cube: Dict[int, int]) -> None:
            key = frozenset(cube.items())
            if key in blocked_keys:
                return
            blocked_keys.add(key)
            blocked.append(cube)
            encoding.block_cube(cube)

        def block_failures(assignment: Dict[int, int], args: tuple) -> None:
            """Rule out everything this failure generalizes to.

            Explorer on: every failing leaf of the candidate's free-hole
            region on ``args`` — the whole region is refuted in this one
            SAT round. Explorer off: just the failing run's own cube.
            """
            nonlocal table_leaves, forker_runs
            if not explorer:
                # The failing run is the space's last execution at both
                # call sites (the inductive loop breaks on it; the full
                # sweep returns at the first mismatch), so its touch
                # record is current — no re-run needed.
                block(space.cube())
                return
            table = space.explore_free_region(
                args, assignment, deadline=deadline
            )
            table_leaves += len(table)
            forker_runs += table.runs
            _, failing = verifier.table_verdict(table)
            for leaf in failing:
                block(leaf.cube)

        # Cost levels to try, in search order. Ascending exhausts level k
        # before k+1 (first hit is minimal); descending is Algorithm 1's
        # literal order: unbounded first, then "cost < best" until UNSAT.
        cost_cap = min(self.max_cost, len(encoding.cost_inputs))
        if self.strategy == "ascend":
            levels = iter(range(0, cost_cap + 1))
        else:
            levels = iter([cost_cap])
        level = next(levels, None)

        while iterations < self.max_iterations:
            iterations += 1
            if time.monotonic() > deadline:
                return result(
                    FIXED if best is not None else TIMEOUT, minimal=False
                )

            if self.strategy == "ascend":
                if level is None:
                    return result(NO_FIX, minimal=False)
                assumptions = encoding.bound_assumptions(level)
            else:
                if best_cost == 0:
                    return result(FIXED, minimal=True)
                assumptions = (
                    encoding.bound_assumptions(best_cost - 1)
                    if best_cost is not None
                    else encoding.bound_assumptions(cost_cap)
                )
            sat_calls += 1
            encoding.reset_phases()
            try:
                verdict = solver.solve(
                    assumptions=assumptions, deadline=deadline
                )
            except TimeoutError:
                # The solver aborted mid-search; its partial state is
                # meaningless for this cost level but the run's best
                # verified solution (if any) still stands.
                return result(
                    FIXED if best is not None else TIMEOUT, minimal=False
                )
            if verdict != SAT:
                if self.strategy == "ascend":
                    level = next(levels, None)
                    if level is None:
                        return result(NO_FIX, minimal=False)
                    continue
                if best is not None:
                    return result(FIXED, minimal=True)
                return result(NO_FIX, minimal=False)
            assignment = encoding.assignment_from_model()

            try:
                # Inductive check against the cached counterexample inputs.
                failed = False
                for args in cex_cache:
                    outcome = space.outcome(assignment, args)
                    if not outcomes_match(verifier.expected(args), outcome):
                        block_failures(assignment, args)
                        failed = True
                        break
                if failed:
                    if not self.incremental:
                        solver, encoding = self._rebuild(
                            registry, blocked, solver, sat_base
                        )
                    continue

                # Full bounded verification.
                cex = verifier.find_counterexample(
                    lambda args: space.outcome(assignment, args),
                    deadline=deadline,
                )
            except TimeoutError:
                return result(
                    FIXED if best is not None else TIMEOUT, minimal=False
                )
            if cex is not None:
                cex_cache.append(cex)
                try:
                    block_failures(assignment, cex)
                except TimeoutError:
                    return result(
                        FIXED if best is not None else TIMEOUT, minimal=False
                    )
                if not self.incremental:
                    solver, encoding = self._rebuild(
                        registry, blocked, solver, sat_base
                    )
                continue

            # Verified.
            cost = assignment_cost(registry, assignment)
            best = assignment
            best_cost = cost
            if self.strategy == "ascend":
                # Levels below were exhausted: this solution is minimal.
                return result(FIXED, minimal=True)
            # Algorithm 1 lines 11-13: record and tighten the bound.
            if not self.incremental:
                solver, encoding = self._rebuild(
                    registry, blocked, solver, sat_base
                )
        return result(FIXED if best is not None else TIMEOUT, minimal=False)

    def _rebuild(
        self,
        registry: HoleRegistry,
        blocked: List[Dict[int, int]],
        old_solver: Solver,
        sat_base: Dict[str, int],
    ) -> Tuple[Solver, HoleEncoding]:
        """Non-incremental mode: fresh solver, re-adding blocking clauses.

        The discarded solver's statistics are folded into ``sat_base``
        first, so reported totals cover the whole run, not just the last
        rebuild.
        """
        for key in sat_base:
            sat_base[key] += old_solver.stats[key]
        solver = Solver()
        encoding = HoleEncoding(solver, registry)
        encoding.block_cubes(blocked)
        return solver, encoding
