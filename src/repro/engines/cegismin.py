"""CEGISMIN: counterexample-guided inductive synthesis with minimization.

This is the paper's Algorithm 1 on our substrate:

- **Synthesis phase** — the SAT solver proposes a hole assignment
  consistent with every behavior observed so far (blocking clauses from
  failed runs) and with the current cost bound (assumption on the counting
  network). This mirrors ``Synth(σ, Φ)``.
- **Verification phase** — the candidate is swept over the full bounded
  input space. A disagreeing input is the new counterexample state σ
  (``Verify(φ)``).
- **Minimization** — when verification succeeds, instead of returning, the
  loop records the solution φ_p and adds the constraint "cost < cost(φ)"
  (the paper's ``minHole < minHoleVal``), continuing until the constraints
  become unsatisfiable; the previous solution is then a *provably minimal*
  correction (Algorithm 1 lines 5–7, 11–13).

Failed runs are generalized before blocking: execution under a concrete
assignment only reads the holes on its path, so the blocking clause covers
the whole cube of assignments that agree on those holes — this is what
makes the search over 10^6+ candidate spaces tractable, standing in for
SKETCH's symbolic encoding.

``incremental=False`` rebuilds the solver at every cost bound instead of
reusing learned state — the ablation the paper's incremental-solving claim
(Section 4.2) is benchmarked against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import time
from typing import Dict, List, Optional, Tuple

from repro.compile import COMPILED, compile_program, resolve_backend
from repro.engines.base import (
    FIXED,
    NO_FIX,
    TIMEOUT,
    Engine,
    EngineResult,
)
from repro.engines.encoding import HoleEncoding
from repro.engines.verify import BoundedVerifier, outcome_of, outcomes_match
from repro.mpy import nodes as N
from repro.sat import SAT, Solver
from repro.symbolic.recorder import RecordingInterpreter
from repro.tilde.nodes import HoleRegistry
from repro.tilde.semantics import assignment_cost

if TYPE_CHECKING:
    from repro.core.spec import ProblemSpec


def _has_top_level_state(module: N.Module) -> bool:
    return any(not isinstance(stmt, N.FuncDef) for stmt in module.body)


class _CandidateRunner:
    """Runs the M̃PY module under assignments.

    Under the default ``compiled`` backend the module is lowered to
    closures exactly once; switching candidates is an assignment-array
    write (zero recompilation). The ``interp`` backend is the tree-walker
    escape hatch, reusing one interpreter when the module carries no
    top-level state.
    """

    def __init__(
        self,
        tilde: N.Module,
        function: str,
        fuel: int,
        backend: Optional[str] = None,
    ):
        self.tilde = tilde
        self.function = function
        self.fuel = fuel
        self.backend = resolve_backend(backend)
        self.stateful = _has_top_level_state(tilde)
        self._interp: Optional[RecordingInterpreter] = None
        self._program = (
            compile_program(tilde, fuel=fuel)
            if self.backend == COMPILED
            else None
        )

    def run(self, assignment: Dict[int, int], args: tuple):
        """Returns (RunResult-or-exception outcome is built by caller)."""
        if self._program is not None:
            return self._program.run(
                self.function, args, assignment=assignment
            )
        if self.stateful or self._interp is None:
            self._interp = RecordingInterpreter(
                self.tilde, assignment, fuel=self.fuel
            )
            return self._interp.run(self.function, args)
        return self._interp.run(self.function, args, assignment=assignment)

    def cube(self) -> Dict[int, int]:
        if self._program is not None:
            return self._program.cube()
        assert self._interp is not None
        return self._interp.cube()


class CegisMinEngine(Engine):
    """The paper's solver: CEGIS + SAT + incremental cost minimization."""

    name = "cegismin"

    def __init__(
        self,
        seed_inputs: int = 4,
        max_iterations: int = 200_000,
        incremental: bool = True,
        bulk_refute_cap: int = 2048,
        max_cost: int = 5,
        strategy: str = "ascend",
    ):
        self.seed_inputs = seed_inputs
        self.max_iterations = max_iterations
        self.incremental = incremental
        #: Max free-hole combinations to exhaustively refute per failure.
        self.bulk_refute_cap = bulk_refute_cap
        #: Give up beyond this many corrections (the paper's distribution
        #: tops out at 4, Fig. 14(a)); larger rewrites are the "big
        #: conceptual errors" the tool is not meant to fix.
        self.max_cost = max_cost
        #: "ascend": iterative deepening on the correction cost — each level
        #: is exhausted before the next, so the first verified candidate is
        #: provably minimal. "descend": the paper's Algorithm 1 order (find
        #: any solution, then constrain cost < best until UNSAT); with a
        #: concrete-execution backend this direction explores far more of
        #: the space, which is exactly what the ablation benchmark shows.
        self.strategy = strategy

    def solve(
        self,
        tilde: N.Module,
        registry: HoleRegistry,
        spec: ProblemSpec,
        verifier: BoundedVerifier,
        timeout_s: float = 60.0,
    ) -> EngineResult:
        start = time.monotonic()
        deadline = start + timeout_s
        runner = _CandidateRunner(
            tilde, spec.student_function, verifier.candidate_fuel
        )

        solver = Solver()
        encoding = HoleEncoding(solver, registry)
        blocked: List[Dict[int, int]] = []  # for non-incremental rebuilds

        cex_cache: List[tuple] = list(verifier.seed_inputs(self.seed_inputs))
        best: Optional[Dict[int, int]] = None
        best_cost: Optional[int] = None
        iterations = 0
        sat_calls = 0

        def result(status: str, minimal: bool) -> EngineResult:
            return EngineResult(
                status=status,
                assignment=best,
                cost=best_cost,
                minimal=minimal,
                iterations=iterations,
                counterexamples=len(cex_cache),
                wall_time=time.monotonic() - start,
                stats={
                    "sat_calls": sat_calls,
                    "blocked_cubes": len(blocked),
                    "sat_conflicts": solver.stats["conflicts"],
                    "sat_decisions": solver.stats["decisions"],
                    "engine": self.name,
                    "incremental": self.incremental,
                },
            )

        def candidate_outcome(assignment, args):
            return outcome_of(
                lambda: runner.run(assignment, args), spec.compare_stdout
            )

        # Cost levels to try, in search order. Ascending exhausts level k
        # before k+1 (first hit is minimal); descending is Algorithm 1's
        # literal order: unbounded first, then "cost < best" until UNSAT.
        cost_cap = min(self.max_cost, len(encoding.cost_inputs))
        if self.strategy == "ascend":
            levels = iter(range(0, cost_cap + 1))
        else:
            levels = iter([cost_cap])
        level = next(levels, None)

        while iterations < self.max_iterations:
            iterations += 1
            if time.monotonic() > deadline:
                return result(
                    FIXED if best is not None else TIMEOUT, minimal=False
                )

            if self.strategy == "ascend":
                if level is None:
                    return result(NO_FIX, minimal=False)
                assumptions = encoding.bound_assumptions(level)
            else:
                if best_cost == 0:
                    return result(FIXED, minimal=True)
                assumptions = (
                    encoding.bound_assumptions(best_cost - 1)
                    if best_cost is not None
                    else encoding.bound_assumptions(cost_cap)
                )
            sat_calls += 1
            encoding.reset_phases()
            if solver.solve(assumptions=assumptions) != SAT:
                if self.strategy == "ascend":
                    level = next(levels, None)
                    if level is None:
                        return result(NO_FIX, minimal=False)
                    continue
                if best is not None:
                    return result(FIXED, minimal=True)
                return result(NO_FIX, minimal=False)
            assignment = encoding.assignment_from_model()

            # Inductive check against the cached counterexample inputs.
            failed = False
            for args in cex_cache:
                outcome = candidate_outcome(assignment, args)
                if not outcomes_match(verifier.expected(args), outcome):
                    cube = runner.cube()
                    blocked.append(cube)
                    encoding.block_cube(cube)
                    self._bulk_refute(
                        args,
                        cube,
                        assignment,
                        registry,
                        verifier,
                        encoding,
                        blocked,
                        candidate_outcome,
                        runner,
                        deadline,
                    )
                    failed = True
                    break
            if failed:
                if not self.incremental:
                    solver, encoding = self._rebuild(registry, blocked)
                continue

            # Full bounded verification.
            try:
                cex = verifier.find_counterexample(
                    lambda args: candidate_outcome(assignment, args),
                    deadline=deadline,
                )
            except TimeoutError:
                return result(
                    FIXED if best is not None else TIMEOUT, minimal=False
                )
            if cex is not None:
                cex_cache.append(cex)
                outcome = candidate_outcome(assignment, cex)
                cube = runner.cube()
                blocked.append(cube)
                encoding.block_cube(cube)
                self._bulk_refute(
                    cex,
                    cube,
                    assignment,
                    registry,
                    verifier,
                    encoding,
                    blocked,
                    candidate_outcome,
                    runner,
                    deadline,
                )
                if not self.incremental:
                    solver, encoding = self._rebuild(registry, blocked)
                continue

            # Verified.
            cost = assignment_cost(registry, assignment)
            best = assignment
            best_cost = cost
            if self.strategy == "ascend":
                # Levels below were exhausted: this solution is minimal.
                return result(FIXED, minimal=True)
            # Algorithm 1 lines 11-13: record and tighten the bound.
            if not self.incremental:
                solver, encoding = self._rebuild(registry, blocked)
        return result(FIXED if best is not None else TIMEOUT, minimal=False)

    def _bulk_refute(
        self,
        args: tuple,
        cube: Dict[int, int],
        assignment: Dict[int, int],
        registry: HoleRegistry,
        verifier: BoundedVerifier,
        encoding: HoleEncoding,
        blocked: List[Dict[int, int]],
        candidate_outcome,
        runner: _CandidateRunner,
        deadline: float,
    ) -> None:
        """Exhaustively refute the free-hole neighborhood of a failed run.

        A failing run often differs from its siblings only in the *free*
        holes of rule-RHS sets (which carry no cost pressure); left to the
        SAT solver, those siblings would be proposed and blocked one by
        one. Replaying the failing input over every combination of the
        touched free holes blocks the whole failing region in one
        iteration — the concrete-execution counterpart of what SKETCH's
        symbolic encoding rules out in a single conflict.
        """
        free_cids = [cid for cid in cube if registry.info(cid).free]
        if not free_cids:
            return
        # Keep the combination count under the cap, preferring to explore
        # small-domain holes exhaustively.
        free_cids.sort(key=lambda cid: registry.info(cid).arity)
        product = 1
        chosen: List[int] = []
        for cid in free_cids:
            arity = registry.info(cid).arity
            if product * arity > self.bulk_refute_cap:
                break
            product *= arity
            chosen.append(cid)
        if not chosen:
            return
        expected = verifier.expected(args)
        import itertools

        domains = [range(registry.info(cid).arity) for cid in chosen]
        original = tuple(cube[cid] for cid in chosen)
        for index, combo in enumerate(itertools.product(*domains)):
            if combo == original:
                continue  # already blocked above
            if index % 32 == 0 and time.monotonic() > deadline:
                return
            variant = dict(assignment)
            for cid, branch in zip(chosen, combo):
                if branch == 0:
                    variant.pop(cid, None)
                else:
                    variant[cid] = branch
            outcome = candidate_outcome(variant, args)
            if not outcomes_match(expected, outcome):
                cube_v = runner.cube()  # the variant run's own touched set
                blocked.append(cube_v)
                encoding.block_cube(cube_v)

    def _rebuild(
        self, registry: HoleRegistry, blocked: List[Dict[int, int]]
    ) -> Tuple[Solver, HoleEncoding]:
        """Non-incremental mode: fresh solver, re-adding blocking clauses."""
        solver = Solver()
        encoding = HoleEncoding(solver, registry)
        for cube in blocked:
            encoding.block_cube(cube)
        return solver, encoding
