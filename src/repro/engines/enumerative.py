"""Brute-force enumeration baseline.

The related work the paper positions against (mutation-based repair [10],
brute-force search [3]) explores candidate programs one at a time. This
engine reproduces that strategy over the same M̃PY spaces: enumerate
canonical hole assignments in nondecreasing cost order, check each against
counterexample inputs, and fully verify survivors. The first verified
candidate is cost-minimal by construction.

With the explorer on (the default), the inner check is a **table
intersection** instead of a nested run loop: each counterexample input is
explored once into a (cube → outcome) table up to the engine's cost
bound, and rejecting a candidate is a trie walk per table — no program
execution at all. Only full verification of survivors still runs code,
and only on inputs without a table. ``--explorer off`` restores the
literal per-candidate sweep.

The candidate cap makes the paper's point measurable: spaces that CEGISMIN
dispatches in seconds push enumeration past any reasonable budget
(Section 7.2: "the large state space of mutants makes this approach
infeasible").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.engines.base import (
    EXHAUSTED,
    FIXED,
    NO_FIX,
    TIMEOUT,
    CandidateSpace,
    Engine,
    EngineResult,
)
from repro.engines.verify import BoundedVerifier, outcomes_match
from repro.explore import ExplorationLimit, resolve_explorer
from repro.explore.table import ExplorationTable
from repro.mpy import nodes as N
from repro.tilde.nodes import HoleRegistry

if TYPE_CHECKING:
    from repro.core.spec import ProblemSpec
    from repro.resilience.deadline import Deadline


def _topological_holes(registry: HoleRegistry) -> List:
    """Holes ordered parents-before-children."""
    infos = {info.cid: info for info in registry.holes()}
    ordered: List = []
    visiting: set = set()

    def visit(cid: int) -> None:
        if cid in visiting:
            return
        visiting.add(cid)
        info = infos[cid]
        if info.parent is not None:
            visit(info.parent[0])
        if info not in ordered:
            ordered.append(info)

    for cid in sorted(infos):
        visit(cid)
    # Deduplicate while preserving order (visit may append parents twice).
    seen: set = set()
    unique: List = []
    for info in ordered:
        if info.cid not in seen:
            seen.add(info.cid)
            unique.append(info)
    return unique


def assignments_up_to_cost(
    registry: HoleRegistry, max_cost: int
) -> Iterator[Tuple[Dict[int, int], int]]:
    """All canonical assignments with cost ≤ ``max_cost``, cheapest first.

    Children of unselected branches are pinned to their defaults, so each
    distinct candidate program appears exactly once.
    """
    holes = _topological_holes(registry)
    infos = {info.cid: info for info in holes}

    def active(info, partial: Dict[int, int]) -> bool:
        parent = info.parent
        while parent is not None:
            parent_cid, branch = parent
            if partial.get(parent_cid, 0) != branch:
                return False
            parent = infos[parent_cid].parent
        return True

    def dfs(index: int, partial: Dict[int, int], cost: int):
        if index == len(holes):
            yield dict(partial), cost
            return
        info = holes[index]
        if not active(info, partial):
            yield from dfs(index + 1, partial, cost)
            return
        for branch in range(info.arity):
            extra = 0 if (branch == 0 or info.free) else 1
            if cost + extra > max_cost:
                continue
            if branch != 0:
                partial[info.cid] = branch
            yield from dfs(index + 1, partial, cost + extra)
            partial.pop(info.cid, None)

    # Cost-ordered: run the DFS per target cost level.
    for target in range(max_cost + 1):
        for assignment, cost in dfs(0, {}, 0):
            if cost == target:
                yield assignment, cost


class EnumerativeEngine(Engine):
    """Cost-ordered brute-force search (the mutation-repair strawman)."""

    name = "enumerative"

    def __init__(
        self,
        max_cost: int = 4,
        max_candidates: int = 500_000,
        seed_inputs: int = 4,
        explorer: Optional[bool] = None,
        table_leaf_cap: int = 20_000,
    ):
        self.max_cost = max_cost
        self.max_candidates = max_candidates
        self.seed_inputs = seed_inputs
        #: Table-intersection rejection on (None = process default).
        self.explorer = explorer
        #: An input whose exploration would exceed this many leaves falls
        #: back to direct candidate runs — tables must stay cheaper than
        #: the sweeps they replace.
        self.table_leaf_cap = table_leaf_cap

    def solve(
        self,
        tilde: N.Module,
        registry: HoleRegistry,
        spec: ProblemSpec,
        verifier: BoundedVerifier,
        timeout_s: float = 60.0,
        backend: Optional[str] = None,
        deadline: Optional["Deadline"] = None,
    ) -> EngineResult:
        start = time.monotonic()
        # The engine's own budget, tightened by the request's end-to-end
        # deadline (queue wait and warmup already spent from it).
        deadline = (
            min(start + timeout_s, deadline.at)
            if deadline is not None
            else start + timeout_s
        )
        explorer = resolve_explorer(self.explorer)
        space = CandidateSpace(
            tilde,
            spec.student_function,
            verifier.candidate_fuel,
            registry=registry,
            backend=backend,
            compare_stdout=spec.compare_stdout,
        )
        cex_cache: List[tuple] = list(verifier.seed_inputs(self.seed_inputs))
        #: Parallel to ``cex_cache``: the input's exploration table (None
        #: when untabled — explorer off / too large) and its reference
        #: outcome, hoisted so the per-candidate loop never re-freezes
        #: args through ``verifier.expected``.
        tables: List[Optional[ExplorationTable]] = []
        expected_cache: List = [verifier.expected(args) for args in cex_cache]
        candidates = 0
        full_verifications = 0
        table_leaves = 0
        table_hits = 0
        forker_runs = 0

        def result(status, assignment=None, cost=None) -> EngineResult:
            failing = None
            if status == TIMEOUT:
                # Degraded feedback for the timeout path (see cegismin).
                try:
                    failing = verifier.failing_tests(
                        lambda args: space.outcome({}, args)
                    )
                except Exception:
                    failing = None
            return EngineResult(
                status=status,
                assignment=assignment,
                cost=cost,
                minimal=status == FIXED,
                failing=failing,
                iterations=candidates,
                counterexamples=len(cex_cache),
                wall_time=time.monotonic() - start,
                stats={
                    "engine": self.name,
                    "candidates": candidates,
                    "full_verifications": full_verifications,
                    "tables": sum(1 for t in tables if t is not None),
                    "table_leaves": table_leaves,
                    "table_hits": table_hits,
                    "forker_runs": forker_runs,
                    "candidate_runs": space.run_count,
                    "fuel_consumed": space.fuel_consumed,
                    "explorer": explorer,
                },
            )

        def table_for(args: tuple) -> Optional[ExplorationTable]:
            """Explore ``args`` up to the cost bound; None when off/huge."""
            nonlocal table_leaves, forker_runs
            if not explorer:
                return None
            try:
                table = space.explore(
                    args,
                    budget=self.max_cost,
                    deadline=deadline,
                    max_leaves=self.table_leaf_cap,
                )
            except ExplorationLimit:
                return None
            table_leaves += len(table)
            forker_runs += table.runs
            return table

        def rejected_by(index: int, assignment: Dict[int, int]) -> bool:
            """Does counterexample input #index rule the candidate out?

            A trie walk when the input is tabled; a real run otherwise.
            """
            nonlocal table_hits
            expected = expected_cache[index]
            table = tables[index]
            if table is not None:
                outcome = table.lookup(assignment)
                if outcome is not None:
                    table_hits += 1
                    return not outcomes_match(expected, outcome)
            return not outcomes_match(
                expected, space.outcome(assignment, cex_cache[index])
            )

        try:
            for args in cex_cache:
                tables.append(table_for(args))

            for assignment, cost in assignments_up_to_cost(
                registry, self.max_cost
            ):
                candidates += 1
                if candidates > self.max_candidates:
                    return result(EXHAUSTED)
                if candidates % 64 == 0 and time.monotonic() > deadline:
                    return result(TIMEOUT)
                if any(
                    rejected_by(index, assignment)
                    for index in range(len(cex_cache))
                ):
                    continue
                full_verifications += 1
                cex = verifier.find_counterexample(
                    lambda args: space.outcome(assignment, args),
                    deadline=deadline,
                )
                if cex is None:
                    return result(FIXED, assignment=assignment, cost=cost)
                cex_cache.append(cex)
                expected_cache.append(verifier.expected(cex))
                tables.append(table_for(cex))
        except TimeoutError:
            return result(TIMEOUT)
        return result(NO_FIX)
