"""Pattern matching for EML rule left-hand sides.

``match(pattern, node)`` returns a bindings dict (metavariable name → MPY
node, plus operator keys for ``anycmp``/``anyarith``) or ``None``. Repeated
metavariables must bind structurally equal subterms, which is exactly what
the frozen-dataclass equality of :mod:`repro.mpy.nodes` provides.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, Optional

from repro.eml.rules import (
    ARITH_OP_KEY,
    CMP_OP_KEY,
    AnyArgs,
    metavar_kind,
)
from repro.mpy import nodes as N

Bindings = Dict[str, object]


def match(pattern: N.Node, node: N.Node) -> Optional[Bindings]:
    """Match ``node`` against ``pattern``; return bindings or None."""
    bindings: Bindings = {}
    if _match(pattern, node, bindings):
        return bindings
    return None


def _bind(bindings: Bindings, key: str, value) -> bool:
    if key in bindings:
        return bindings[key] == value
    bindings[key] = value
    return True


def _match(pattern: N.Node, node: N.Node, bindings: Bindings) -> bool:
    # Metavariables: classification by reserved names.
    if isinstance(pattern, N.Var):
        kind = metavar_kind(pattern.name)
        if kind == "var":
            return isinstance(node, N.Var) and _bind(
                bindings, pattern.name, node
            )
        if kind == "int":
            return isinstance(node, N.IntLit) and _bind(
                bindings, pattern.name, node
            )
        if kind == "expr":
            return isinstance(node, N.Expr) and _bind(
                bindings, pattern.name, node
            )
        # Literal variable (e.g. the `range` in `range(a0, a1)`).
        return isinstance(node, N.Var) and node.name == pattern.name

    # Operator wildcards. `anycmp` covers the paper's õpc set (the six
    # equality/ordering operators); membership tests are not comparisons
    # COMPR should rewrite.
    if isinstance(pattern, N.Compare) and pattern.op == "?cmp":
        if not isinstance(node, N.Compare):
            return False
        if node.op not in ("==", "!=", "<", ">", "<=", ">="):
            return False
        if not _bind(bindings, CMP_OP_KEY, node.op):
            return False
        return _match(pattern.left, node.left, bindings) and _match(
            pattern.right, node.right, bindings
        )
    if isinstance(pattern, N.BinOp) and pattern.op == "?arith":
        if not isinstance(node, N.BinOp):
            return False
        if not _bind(bindings, ARITH_OP_KEY, node.op):
            return False
        return _match(pattern.left, node.left, bindings) and _match(
            pattern.right, node.right, bindings
        )

    if type(pattern) is not type(node):
        return False

    for f in fields(pattern):
        if f.name == "line":
            continue
        pattern_value = getattr(pattern, f.name)
        node_value = getattr(node, f.name)
        if isinstance(pattern_value, N.Node):
            if not isinstance(node_value, N.Node):
                return False
            if not _match(pattern_value, node_value, bindings):
                return False
        elif isinstance(pattern_value, tuple):
            if not isinstance(node_value, tuple):
                return False
            if not _match_sequence(pattern_value, node_value, bindings):
                return False
        else:
            if pattern_value != node_value:
                return False
    return True


def _match_sequence(patterns: tuple, nodes: tuple, bindings: Bindings) -> bool:
    """Element-wise matching with a trailing ``...`` (AnyArgs) wildcard."""
    if patterns and isinstance(patterns[-1], AnyArgs):
        heads = patterns[:-1]
        if len(nodes) < len(heads):
            return False
        for pattern, node in zip(heads, nodes):
            if not _match_item(pattern, node, bindings):
                return False
        return True
    if len(patterns) != len(nodes):
        return False
    for pattern, node in zip(patterns, nodes):
        if not _match_item(pattern, node, bindings):
            return False
    return True


def _match_item(pattern, node, bindings: Bindings) -> bool:
    if isinstance(pattern, N.Node):
        return isinstance(node, N.Node) and _match(pattern, node, bindings)
    return pattern == node
