"""Parser for the textual ``.eml`` error-model format.

Grammar (line oriented)::

    model <name>                      # optional header
    # comment
    rule <NAME>: <lhs> -> <rhs>       # rewrite rule (expression or statement)
    rule <NAME>: <lhs> -> remove     # statement-removal rule
    rule <NAME>: insert-top           # followed by an indented block
        <python statements with $1, $2 placeholders>
      msg: "feedback message template"

Rule sides are Python expressions/statements extended with:

- ``X'``  (prime)     → recursively transform the binding of X,
- ``?X``              → same-type in-scope variables,
- ``{e1, e2}``        → a free selection set (parsed from a Python set
  display, which cannot occur in MPY programs),
- ``anycmp(x, y)``    → LHS: match any comparison and bind its operator;
  RHS: rebuild the comparison with the bound operator,
- ``cmpset(x, y)``    → RHS: operator set over all six comparisons,
- ``anyarith(x, y)`` / ``arithset(x, y)`` → same for arithmetic operators,
- ``...`` in a call pattern → match any remaining arguments.

String literals inside rules must use double quotes (single quotes are
reserved for the prime operator).
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Tuple

from repro.eml.errors import EMLSyntaxError
from repro.eml.rules import (
    AnyArgs,
    ArithSet,
    CmpSet,
    ErrorModel,
    FreeSet,
    InsertTopRule,
    Prime,
    RewriteRule,
    ScopeVars,
)
from repro.mpy import nodes as N
from repro.mpy import frontend
from repro.mpy.errors import FrontendError

_PRIME_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)'")
_SCOPE_RE = re.compile(r"\?([A-Za-z_][A-Za-z0-9_]*)")
_STRING_RE = re.compile(r'"([^"\\]*)"')

_PRIME_PREFIX = "__prime__"
_SCOPE_PREFIX = "__scope__"
_STR_PREFIX = "__emlstr"


def _preprocess(text: str, line: Optional[int]) -> Tuple[str, List[str]]:
    """Replace EML-only syntax with parseable placeholders."""
    strings: List[str] = []

    def stash(match: re.Match) -> str:
        strings.append(match.group(1))
        return f'"{_STR_PREFIX}{len(strings) - 1}__"'

    text = _STRING_RE.sub(stash, text)
    text = _PRIME_RE.sub(lambda m: _PRIME_PREFIX + m.group(1), text)
    if "'" in text:
        raise EMLSyntaxError(
            "single quotes are reserved for the prime operator; "
            "use double quotes for strings",
            line,
        )
    text = _SCOPE_RE.sub(lambda m: _SCOPE_PREFIX + m.group(1), text)
    return text, strings


class _RuleSideParser:
    """Converts preprocessed Python ast into MPY + marker nodes."""

    def __init__(self, strings: List[str], line: Optional[int]):
        self.strings = strings
        self.line = line

    def parse_side(self, text: str) -> N.Node:
        """Parse a rule side as an expression, else as a statement."""
        try:
            tree = ast.parse(text.strip(), mode="eval")
            return self.convert_expr(tree.body)
        except SyntaxError:
            pass
        return self.parse_statement(text)

    def parse_statement(self, text: str) -> N.Stmt:
        wrapped = "def __rule__():\n" + "\n".join(
            "    " + line for line in text.strip().splitlines()
        )
        try:
            tree = ast.parse(wrapped)
        except SyntaxError as exc:
            raise EMLSyntaxError(f"cannot parse rule side: {exc}", self.line)
        body = tree.body[0].body  # type: ignore[union-attr]
        if len(body) != 1:
            raise EMLSyntaxError(
                "rule sides must be single statements", self.line
            )
        return self.convert_stmt(body[0])

    # -- conversion ---------------------------------------------------------

    def convert_stmt(self, node: ast.stmt) -> N.Stmt:
        if isinstance(node, ast.Return):
            value = (
                self.convert_expr(node.value) if node.value is not None else None
            )
            return N.Return(value=value)
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1:
                raise EMLSyntaxError("chained assignment in rule", self.line)
            return N.Assign(
                target=self.convert_expr(node.targets[0]),
                value=self.convert_expr(node.value),
            )
        if isinstance(node, ast.AugAssign):
            op = frontend._BINOPS.get(type(node.op))
            if op is None:
                raise EMLSyntaxError("unsupported operator in rule", self.line)
            return N.AugAssign(
                target=self.convert_expr(node.target),
                op=op,
                value=self.convert_expr(node.value),
            )
        if isinstance(node, ast.Expr):
            return N.ExprStmt(value=self.convert_expr(node.value))
        raise EMLSyntaxError(
            f"unsupported statement in rule: {type(node).__name__}", self.line
        )

    def convert_expr(self, node: ast.expr) -> N.Expr:
        if isinstance(node, ast.Set):
            return FreeSet(
                elements=tuple(self.convert_expr(e) for e in node.elts)
            )
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            name = node.func.id
            if name in ("anycmp", "cmpset", "anyarith", "arithset"):
                if len(node.args) != 2:
                    raise EMLSyntaxError(
                        f"{name}() takes exactly two operands", self.line
                    )
                left = self.convert_expr(node.args[0])
                right = self.convert_expr(node.args[1])
                if name == "anycmp":
                    return N.Compare(op="?cmp", left=left, right=right)
                if name == "cmpset":
                    return CmpSet(left=left, right=right)
                if name == "anyarith":
                    return N.BinOp(op="?arith", left=left, right=right)
                return ArithSet(left=left, right=right)
        if isinstance(node, ast.Name):
            name = node.id
            if name.startswith(_PRIME_PREFIX):
                return Prime(binding=name[len(_PRIME_PREFIX):])
            if name.startswith(_SCOPE_PREFIX):
                return ScopeVars(binding=name[len(_SCOPE_PREFIX):])
            return N.Var(name=name)
        if isinstance(node, ast.Constant):
            if node.value is Ellipsis:
                return AnyArgs()
            if isinstance(node.value, str) and node.value.startswith(
                _STR_PREFIX
            ):
                index = int(node.value[len(_STR_PREFIX):].rstrip("_"))
                return N.StrLit(value=self.strings[index])
        # Everything else: reuse the ordinary frontend conversion, but with
        # this converter handling the children (so markers nest anywhere).
        return self._convert_via_frontend(node)

    def _convert_via_frontend(self, node: ast.expr) -> N.Expr:
        if isinstance(node, ast.BinOp):
            op = frontend._BINOPS.get(type(node.op))
            if op is None:
                raise EMLSyntaxError("unsupported operator in rule", self.line)
            return N.BinOp(
                op=op,
                left=self.convert_expr(node.left),
                right=self.convert_expr(node.right),
            )
        if isinstance(node, ast.UnaryOp):
            op = frontend._UNARYOPS.get(type(node.op))
            if op is None:
                raise EMLSyntaxError("unsupported operator in rule", self.line)
            return N.UnaryOp(op=op, operand=self.convert_expr(node.operand))
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise EMLSyntaxError(
                    "chained comparisons not allowed in rules", self.line
                )
            op = frontend._CMPOPS.get(type(node.ops[0]))
            if op is None:
                raise EMLSyntaxError("unsupported comparison in rule", self.line)
            return N.Compare(
                op=op,
                left=self.convert_expr(node.left),
                right=self.convert_expr(node.comparators[0]),
            )
        if isinstance(node, ast.BoolOp):
            op = "and" if isinstance(node.op, ast.And) else "or"
            result = self.convert_expr(node.values[-1])
            for value in reversed(node.values[:-1]):
                result = N.BoolOp(
                    op=op, left=self.convert_expr(value), right=result
                )
            return result
        if isinstance(node, ast.Call):
            return N.Call(
                func=self.convert_expr(node.func),
                args=tuple(self.convert_expr(a) for a in node.args),
            )
        if isinstance(node, ast.Attribute):
            return N.Attribute(obj=self.convert_expr(node.value), attr=node.attr)
        if isinstance(node, ast.Subscript):
            if isinstance(node.slice, ast.Slice):
                sl = node.slice
                return N.Slice(
                    obj=self.convert_expr(node.value),
                    lower=self.convert_expr(sl.lower) if sl.lower else None,
                    upper=self.convert_expr(sl.upper) if sl.upper else None,
                    step=self.convert_expr(sl.step) if sl.step else None,
                )
            return N.Index(
                obj=self.convert_expr(node.value),
                index=self.convert_expr(node.slice),
            )
        if isinstance(node, ast.List):
            return N.ListLit(elts=tuple(self.convert_expr(e) for e in node.elts))
        if isinstance(node, ast.Tuple):
            return N.TupleLit(
                elts=tuple(self.convert_expr(e) for e in node.elts)
            )
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return N.BoolLit(value=node.value)
            if isinstance(node.value, int):
                return N.IntLit(value=node.value)
            if isinstance(node.value, str):
                return N.StrLit(value=node.value)
            if node.value is None:
                return N.NoneLit()
        if isinstance(node, ast.IfExp):
            return N.IfExp(
                test=self.convert_expr(node.test),
                body=self.convert_expr(node.body),
                orelse=self.convert_expr(node.orelse),
            )
        raise EMLSyntaxError(
            f"unsupported expression in rule: {type(node).__name__}", self.line
        )


def parse_rule(
    name: str,
    text: str,
    message: Optional[str] = None,
    line: Optional[int] = None,
) -> RewriteRule:
    """Parse one ``lhs -> rhs`` rule body."""
    parts = _split_arrow(text, line)
    lhs_text, rhs_text = parts
    lhs_pre, lhs_strings = _preprocess(lhs_text, line)
    side_parser = _RuleSideParser(lhs_strings, line)
    lhs = side_parser.parse_side(lhs_pre)
    if rhs_text.strip() == "remove":
        if isinstance(lhs, N.Expr):
            # `print(...) -> remove`: a bare call pattern removes the
            # corresponding expression statement.
            lhs = N.ExprStmt(value=lhs)
        rhs: Optional[N.Node] = None
    else:
        rhs_pre, rhs_strings = _preprocess(rhs_text, line)
        rhs_parser = _RuleSideParser(rhs_strings, line)
        rhs = rhs_parser.parse_side(rhs_pre)
        if isinstance(lhs, N.Stmt) != isinstance(rhs, N.Stmt):
            raise EMLSyntaxError(
                "rule sides must both be expressions or both statements", line
            )
    return RewriteRule(
        name=name,
        lhs=lhs,
        rhs=rhs,
        message=message,
        source=text.strip(),
        line=line,
    )


def _split_arrow(text: str, line: Optional[int]) -> Tuple[str, str]:
    depth = 0
    in_string = False
    for index in range(len(text) - 1):
        ch = text[index]
        if ch == '"':
            in_string = not in_string
        if in_string:
            continue
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "-" and text[index + 1] == ">" and depth == 0:
            return text[:index], text[index + 2:]
    raise EMLSyntaxError("rule is missing '->'", line)


def parse_error_model(text: str, name: str = "model") -> ErrorModel:
    """Parse a full ``.eml`` document."""
    rules: List[object] = []
    model_name = name
    lines = text.splitlines()
    index = 0
    pending_insert: Optional[Tuple[str, List[str], int]] = None

    def flush_insert() -> None:
        nonlocal pending_insert
        if pending_insert is None:
            return
        rule_name, block, at_line = pending_insert
        if not block:
            raise EMLSyntaxError("insert-top rule has an empty body", at_line)
        body = _dedent(block)
        _validate_insert_top(body, at_line)
        rules.append(
            InsertTopRule(
                name=rule_name, body_source=body, source=body, line=at_line
            )
        )
        pending_insert = None

    while index < len(lines):
        raw = lines[index]
        stripped = raw.strip()
        lineno = index + 1
        index += 1
        if pending_insert is not None:
            # Indented lines continue the insert-top block.
            if raw[:1] in (" ", "\t") and stripped and not stripped.startswith(
                ("msg:", "rule ", "#")
            ):
                pending_insert[1].append(raw)
                continue
            flush_insert()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith("model "):
            model_name = stripped[len("model "):].strip()
            continue
        if stripped.startswith("msg:"):
            message = _parse_msg(stripped, lineno)
            if not rules:
                raise EMLSyntaxError("msg: before any rule", lineno)
            last = rules[-1]
            if isinstance(last, RewriteRule):
                rules[-1] = RewriteRule(
                    name=last.name,
                    lhs=last.lhs,
                    rhs=last.rhs,
                    message=message,
                    source=last.source,
                    line=last.line,
                )
            else:
                rules[-1] = InsertTopRule(
                    name=last.name,
                    body_source=last.body_source,
                    message=message,
                    source=last.source,
                    line=last.line,
                )
            continue
        if stripped.startswith("rule "):
            header = stripped[len("rule "):]
            if ":" not in header:
                raise EMLSyntaxError("rule header is missing ':'", lineno)
            rule_name, _, body = header.partition(":")
            rule_name = rule_name.strip()
            body = body.strip()
            if not rule_name.isidentifier():
                raise EMLSyntaxError(
                    f"invalid rule name {rule_name!r}", lineno
                )
            if body == "insert-top":
                pending_insert = (rule_name, [], lineno)
            else:
                rules.append(parse_rule(rule_name, body, line=lineno))
            continue
        raise EMLSyntaxError(f"unrecognized line: {stripped!r}", lineno)

    flush_insert()
    return ErrorModel(name=model_name, rules=tuple(rules))


def _parse_msg(line: str, lineno: int) -> str:
    body = line[len("msg:"):].strip()
    if body.startswith('"') and body.endswith('"') and len(body) >= 2:
        return body[1:-1]
    return body


def _dedent(block: List[str]) -> str:
    indents = [len(line) - len(line.lstrip()) for line in block if line.strip()]
    cut = min(indents) if indents else 0
    return "\n".join(line[cut:] for line in block) + "\n"


def _validate_insert_top(body: str, line: Optional[int]) -> None:
    """Check the block parses once placeholders are substituted."""
    substituted = re.sub(r"\$[0-9]+", "__param__", body)
    try:
        frontend.parse_program(substituted)
    except FrontendError as exc:
        raise EMLSyntaxError(f"bad insert-top body: {exc}", line) from exc
