"""Well-formedness of error models (paper Definitions 1–2, Theorem 1).

A rewrite rule ``L -> R`` is well-formed when every tagged (primed) subterm
of R has a strictly smaller syntax tree than L. In our surface syntax the
prime operator applies to metavariables only (size-1 patterns), so the check
reduces to: the LHS must be larger than a bare metavariable, every primed
name must be bound by the LHS, and the RHS must not mention unbound
metavariables. Together with the strict-subterm property this guarantees
the T_E transformation terminates (Theorem 1).
"""

from __future__ import annotations

from typing import Set

from repro.eml.errors import EMLError
from repro.eml.rules import (
    AnyArgs,
    ArithSet,
    CmpSet,
    ErrorModel,
    FreeSet,
    InsertTopRule,
    Prime,
    RewriteRule,
    ScopeVars,
    metavar_kind,
)
from repro.mpy import nodes as N


class EMLWellFormednessError(EMLError):
    """The error model violates Definition 1 or 2."""


def lhs_metavars(lhs: N.Node) -> Set[str]:
    """Metavariable names bound by a rule's left-hand side."""
    names: Set[str] = set()
    for node in lhs.walk():
        if isinstance(node, N.Var) and metavar_kind(node.name):
            names.add(node.name)
    return names


def lhs_binds_cmp_op(lhs: N.Node) -> bool:
    return any(
        isinstance(node, N.Compare) and node.op == "?cmp"
        for node in lhs.walk()
    )


def lhs_binds_arith_op(lhs: N.Node) -> bool:
    return any(
        isinstance(node, N.BinOp) and node.op == "?arith"
        for node in lhs.walk()
    )


def check_rule(rule: RewriteRule) -> None:
    """Definition 1: well-formed rewrite rule."""
    bound = lhs_metavars(rule.lhs)
    lhs_size = rule.lhs.size()
    for node in rule.lhs.walk():
        if isinstance(node, (Prime, ScopeVars, FreeSet, CmpSet, ArithSet)):
            raise EMLWellFormednessError(
                f"rule {rule.name}: {type(node).__name__} is only valid in "
                "the RHS"
            )
    if rule.rhs is None:
        return
    has_cmp = lhs_binds_cmp_op(rule.lhs)
    has_arith = lhs_binds_arith_op(rule.lhs)
    for node in rule.rhs.walk():
        if isinstance(node, Prime):
            if node.binding not in bound:
                raise EMLWellFormednessError(
                    f"rule {rule.name}: prime on unbound metavariable "
                    f"{node.binding!r}"
                )
            # The primed pattern is a single metavariable (size 1); the
            # strict-subterm requirement of Definition 1 is `1 < size(L)`.
            if lhs_size <= 1:
                raise EMLWellFormednessError(
                    f"rule {rule.name}: primed subterm is not smaller than "
                    "the LHS (Definition 1)"
                )
        elif isinstance(node, ScopeVars):
            if node.binding not in bound:
                raise EMLWellFormednessError(
                    f"rule {rule.name}: ?{node.binding} refers to an unbound "
                    "metavariable"
                )
        elif isinstance(node, N.Var):
            kind = metavar_kind(node.name)
            if kind is not None and node.name not in bound:
                raise EMLWellFormednessError(
                    f"rule {rule.name}: RHS metavariable {node.name!r} is "
                    "not bound by the LHS"
                )
        elif isinstance(node, CmpSet) and not has_cmp:
            raise EMLWellFormednessError(
                f"rule {rule.name}: cmpset() requires anycmp() on the LHS"
            )
        elif isinstance(node, N.Compare) and node.op == "?cmp" and not has_cmp:
            raise EMLWellFormednessError(
                f"rule {rule.name}: anycmp() in RHS requires anycmp() on "
                "the LHS"
            )
        elif isinstance(node, ArithSet) and not has_arith:
            raise EMLWellFormednessError(
                f"rule {rule.name}: arithset() requires anyarith() on the LHS"
            )
        elif isinstance(node, N.BinOp) and node.op == "?arith" and not has_arith:
            raise EMLWellFormednessError(
                f"rule {rule.name}: anyarith() in RHS requires anyarith() on "
                "the LHS"
            )
        elif isinstance(node, AnyArgs):
            raise EMLWellFormednessError(
                f"rule {rule.name}: '...' is only valid in the LHS"
            )


def check_model(model: ErrorModel) -> None:
    """Definition 2: a model is well-formed iff all its rules are."""
    seen: Set[str] = set()
    for rule in model:
        if rule.name in seen:
            raise EMLWellFormednessError(
                f"duplicate rule name {rule.name!r} in model {model.name!r}"
            )
        seen.add(rule.name)
        if isinstance(rule, RewriteRule):
            check_rule(rule)
        elif isinstance(rule, InsertTopRule):
            if not rule.body_source.strip():
                raise EMLWellFormednessError(
                    f"rule {rule.name}: empty insert-top body"
                )
