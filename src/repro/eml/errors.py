"""Exceptions for the EML error-model language."""

from __future__ import annotations

from repro.mpy.errors import MPYError


class EMLError(MPYError):
    """Base class for error-model problems."""


class EMLSyntaxError(EMLError):
    """The .eml text could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        where = f" (eml line {line})" if line is not None else ""
        super().__init__(f"{message}{where}")
