"""The T_E transformation: MPY program × error model → M̃PY program.

Implements Section 3.3 / Fig. 9 of the paper:

- the default traversal ``w0 = w[t → T_E(t)]`` transforms children,
- each rule whose LHS matches the *original* element contributes one
  alternative (its instantiated RHS, with primed subterms transformed
  recursively),
- ambiguous matches become separate alternatives (set union),
- the result is a boxed choice ``{ w0 , w1, ..., wn }``.

Rule RHS sets (``FreeSet``/``CmpSet``/``ArithSet``/``ScopeVars``) become
*free* choice nodes — their selection is part of the single correction the
rule application already pays for.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.eml.errors import EMLError
from repro.eml.matcher import match
from repro.eml.rules import (
    ARITH_OP_KEY,
    CMP_OP_KEY,
    AnyArgs,
    ArithSet,
    CmpSet,
    ErrorModel,
    FreeSet,
    InsertTopRule,
    Prime,
    RewriteRule,
    ScopeVars,
    metavar_kind,
)
from repro.eml.typeinfer import TypeEnv, infer_expr, infer_function_env
from repro.eml.wellformed import check_model
from repro.mpy import nodes as N
from repro.mpy import frontend
from repro.mpy.values import TypeSig
from repro.tilde.nodes import (
    ChoiceBinOp,
    ChoiceCompare,
    ChoiceExpr,
    ChoiceStmt,
    HoleRegistry,
)

#: The paper's õpc: the six comparison operators of COMPR.
CMP_OPS_SET = ("==", "!=", "<", ">", "<=", ">=")
#: Arithmetic operator set for arithset().
ARITH_OPS_SET = ("+", "-", "*", "//", "%", "**", "/")


@dataclass
class _Scope:
    """Per-function context: inferred types + parameter list."""

    env: TypeEnv
    params: Tuple[str, ...]


class _Inapplicable(Exception):
    """Raised while instantiating an RHS that cannot apply here (e.g. ``?a``
    found no same-type variable in scope)."""


class Transformer:
    """Applies an error model to programs, producing M̃PY trees."""

    def __init__(
        self,
        model: ErrorModel,
        param_types: Optional[Dict[str, TypeSig]] = None,
        check: bool = True,
    ):
        if check:
            check_model(model)
        self.model = model
        self.param_types = param_types or {}
        self._next_cid = 0

    # -- public ------------------------------------------------------------

    def transform_module(self, module: N.Module) -> N.Module:
        body = tuple(
            self._transform_stmt(stmt, self._module_scope(module))
            for stmt in module.body
        )
        return N.Module(body=body, line=module.line)

    def registry_for(self, tilde_module: N.Module) -> HoleRegistry:
        return HoleRegistry().rebuild_from(tilde_module)

    # -- plumbing ------------------------------------------------------------

    def _fresh(self) -> int:
        cid = self._next_cid
        self._next_cid += 1
        return cid

    def _module_scope(self, module: N.Module) -> _Scope:
        env = TypeEnv()
        return _Scope(env=env, params=())

    # -- statements ----------------------------------------------------------

    def _transform_funcdef(self, fn: N.FuncDef) -> N.FuncDef:
        scope = _Scope(
            env=infer_function_env(fn, self.param_types), params=fn.params
        )
        body: List[N.Stmt] = [
            self._transform_stmt(stmt, scope) for stmt in fn.body
        ]
        prefix: List[N.Stmt] = []
        for rule in self.model.insert_top_rules():
            block = self._instantiate_insert_top(rule, fn)
            if block is None:
                continue
            prefix.append(
                ChoiceStmt(
                    choices=((), block),
                    cid=self._fresh(),
                    rule=rule.name,
                    branch_rules=("", rule.name),
                    line=fn.body[0].line if fn.body else fn.line,
                )
            )
        return N.FuncDef(
            name=fn.name,
            params=fn.params,
            body=tuple(prefix + body),
            line=fn.line,
        )

    def _instantiate_insert_top(
        self, rule: InsertTopRule, fn: N.FuncDef
    ) -> Optional[Tuple[N.Stmt, ...]]:
        def substitute(match_obj: re.Match) -> str:
            index = int(match_obj.group(0)[1:])
            if not 1 <= index <= len(fn.params):
                raise _Inapplicable()
            return fn.params[index - 1]

        try:
            source = re.sub(r"\$[0-9]+", substitute, rule.body_source)
        except _Inapplicable:
            return None
        module = frontend.parse_program(source)
        line = fn.body[0].line if fn.body else fn.line

        def tag(node: N.Node) -> N.Node:
            return N.map_children(node, tag).with_line(line)

        return tuple(tag(stmt) for stmt in module.body)

    def _transform_stmt(self, stmt: N.Stmt, scope: _Scope) -> N.Stmt:
        if isinstance(stmt, N.FuncDef):
            return self._transform_funcdef(stmt)
        default = self._default_stmt(stmt, scope)
        alternatives: List[Tuple[str, Tuple[N.Stmt, ...]]] = []
        for rule in self.model.rewrite_rules():
            if not rule.is_statement_rule:
                continue
            bindings = match(rule.lhs, stmt)
            if bindings is None:
                continue
            if rule.rhs is None:
                alternatives.append((rule.name, ()))
                continue
            try:
                new_stmt = self._instantiate(rule.rhs, bindings, scope, rule)
            except _Inapplicable:
                continue
            new_stmt = new_stmt.with_line(stmt.line)
            alternatives.append((rule.name, (new_stmt,)))
        if not alternatives:
            return default
        return ChoiceStmt(
            choices=((default,),) + tuple(block for _, block in alternatives),
            cid=self._fresh(),
            rule=alternatives[0][0],
            branch_rules=("",) + tuple(name for name, _ in alternatives),
            line=stmt.line,
        )

    def _default_stmt(self, stmt: N.Stmt, scope: _Scope) -> N.Stmt:
        tx = lambda e: self._transform_expr(e, scope)  # noqa: E731
        if isinstance(stmt, N.Assign):
            return N.Assign(
                target=self._transform_target(stmt.target, scope),
                value=tx(stmt.value),
                line=stmt.line,
            )
        if isinstance(stmt, N.AugAssign):
            return N.AugAssign(
                target=self._transform_target(stmt.target, scope),
                op=stmt.op,
                value=tx(stmt.value),
                line=stmt.line,
            )
        if isinstance(stmt, N.ExprStmt):
            return N.ExprStmt(value=tx(stmt.value), line=stmt.line)
        if isinstance(stmt, N.If):
            return N.If(
                test=tx(stmt.test),
                body=self._transform_block(stmt.body, scope),
                orelse=self._transform_block(stmt.orelse, scope),
                line=stmt.line,
            )
        if isinstance(stmt, N.While):
            return N.While(
                test=tx(stmt.test),
                body=self._transform_block(stmt.body, scope),
                line=stmt.line,
            )
        if isinstance(stmt, N.For):
            return N.For(
                target=stmt.target,
                iter=tx(stmt.iter),
                body=self._transform_block(stmt.body, scope),
                line=stmt.line,
            )
        if isinstance(stmt, N.Return):
            return N.Return(
                value=tx(stmt.value) if stmt.value is not None else None,
                line=stmt.line,
            )
        return stmt

    def _transform_block(
        self, block: Tuple[N.Stmt, ...], scope: _Scope
    ) -> Tuple[N.Stmt, ...]:
        return tuple(self._transform_stmt(s, scope) for s in block)

    def _transform_target(self, target: N.Expr, scope: _Scope) -> N.Expr:
        """Assignment targets: transform index expressions, keep the base."""
        if isinstance(target, N.Index):
            return N.Index(
                obj=target.obj,
                index=self._transform_expr(target.index, scope),
                line=target.line,
            )
        if isinstance(target, N.Slice):
            tx = lambda e: self._transform_expr(e, scope) if e else None  # noqa: E731
            return N.Slice(
                obj=target.obj,
                lower=tx(target.lower),
                upper=tx(target.upper),
                step=tx(target.step),
                line=target.line,
            )
        return target

    # -- expressions -----------------------------------------------------------

    def _transform_expr(self, expr: N.Expr, scope: _Scope) -> N.Expr:
        default = N.map_children(
            expr, lambda child: self._transform_expr(child, scope)
        )
        alternatives: List[Tuple[str, N.Expr]] = []
        for rule in self.model.rewrite_rules():
            if rule.is_statement_rule:
                continue
            bindings = match(rule.lhs, expr)
            if bindings is None:
                continue
            try:
                new_expr = self._instantiate(rule.rhs, bindings, scope, rule)
            except _Inapplicable:
                continue
            new_expr = new_expr.with_line(expr.line)
            if new_expr == default and not _contains_choice(new_expr):
                continue  # the "correction" would not change anything
            alternatives.append((rule.name, new_expr))
        if not alternatives:
            return default
        return ChoiceExpr(
            choices=(default,) + tuple(e for _, e in alternatives),
            cid=self._fresh(),
            rule=alternatives[0][0],
            branch_rules=("",) + tuple(name for name, _ in alternatives),
            line=expr.line,
        )

    # -- RHS instantiation -------------------------------------------------------

    def _instantiate(
        self,
        template: N.Node,
        bindings: Dict[str, object],
        scope: _Scope,
        rule: RewriteRule,
    ) -> N.Node:
        if isinstance(template, N.Var):
            kind = metavar_kind(template.name)
            if kind is not None:
                if template.name not in bindings:
                    raise EMLError(
                        f"rule {rule.name}: unbound metavariable "
                        f"{template.name!r} in RHS"
                    )
                return bindings[template.name]  # type: ignore[return-value]
            return template
        if isinstance(template, Prime):
            bound = bindings.get(template.binding)
            if bound is None:
                raise EMLError(
                    f"rule {rule.name}: prime on unbound metavariable "
                    f"{template.binding!r}"
                )
            return self._transform_expr(bound, scope)  # type: ignore[arg-type]
        if isinstance(template, ScopeVars):
            names = self._scope_var_names(template.binding, bindings, scope)
            if not names:
                raise _Inapplicable()
            if len(names) == 1:
                return N.Var(name=names[0])
            return ChoiceExpr(
                choices=tuple(N.Var(name=n) for n in names),
                cid=self._fresh(),
                rule=rule.name,
                free=True,
            )
        if isinstance(template, FreeSet):
            elements: List[N.Expr] = []
            for element in template.elements:
                if isinstance(element, ScopeVars):
                    names = self._scope_var_names(
                        element.binding, bindings, scope
                    )
                    elements.extend(N.Var(name=n) for n in names)
                    continue
                try:
                    elements.append(
                        self._instantiate(element, bindings, scope, rule)
                    )
                except _Inapplicable:
                    continue
            deduped: List[N.Expr] = []
            for element in elements:
                if element not in deduped:
                    deduped.append(element)
            if not deduped:
                raise _Inapplicable()
            if len(deduped) == 1:
                return deduped[0]
            return ChoiceExpr(
                choices=tuple(deduped),
                cid=self._fresh(),
                rule=rule.name,
                free=True,
            )
        if isinstance(template, CmpSet):
            default_op = bindings.get(CMP_OP_KEY)
            if default_op is None:
                raise EMLError(
                    f"rule {rule.name}: cmpset() requires anycmp() on the LHS"
                )
            ops = (default_op,) + tuple(
                op for op in CMP_OPS_SET if op != default_op
            )
            return ChoiceCompare(
                ops=ops,  # type: ignore[arg-type]
                left=self._instantiate(template.left, bindings, scope, rule),
                right=self._instantiate(template.right, bindings, scope, rule),
                cid=self._fresh(),
                rule=rule.name,
                free=True,
            )
        if isinstance(template, ArithSet):
            default_op = bindings.get(ARITH_OP_KEY)
            if default_op is None:
                raise EMLError(
                    f"rule {rule.name}: arithset() requires anyarith() on the LHS"
                )
            ops = (default_op,) + tuple(
                op for op in ARITH_OPS_SET if op != default_op
            )
            return ChoiceBinOp(
                ops=ops,  # type: ignore[arg-type]
                left=self._instantiate(template.left, bindings, scope, rule),
                right=self._instantiate(template.right, bindings, scope, rule),
                cid=self._fresh(),
                rule=rule.name,
                free=True,
            )
        if isinstance(template, N.Compare) and template.op == "?cmp":
            op = bindings.get(CMP_OP_KEY)
            if op is None:
                raise EMLError(
                    f"rule {rule.name}: anycmp() in RHS without anycmp() in LHS"
                )
            return N.Compare(
                op=op,  # type: ignore[arg-type]
                left=self._instantiate(template.left, bindings, scope, rule),
                right=self._instantiate(template.right, bindings, scope, rule),
            )
        if isinstance(template, N.BinOp) and template.op == "?arith":
            op = bindings.get(ARITH_OP_KEY)
            if op is None:
                raise EMLError(
                    f"rule {rule.name}: anyarith() in RHS without anyarith() "
                    "in LHS"
                )
            return N.BinOp(
                op=op,  # type: ignore[arg-type]
                left=self._instantiate(template.left, bindings, scope, rule),
                right=self._instantiate(template.right, bindings, scope, rule),
            )
        if isinstance(template, AnyArgs):
            raise EMLError(f"rule {rule.name}: '...' is only valid in the LHS")
        return _fold(
            N.map_children(
                template,
                lambda child: self._instantiate(child, bindings, scope, rule),
            )
        )

    def _scope_var_names(
        self, binding: str, bindings: Dict[str, object], scope: _Scope
    ) -> Tuple[str, ...]:
        """Expand ``?X``: all in-scope variables type-compatible with X.

        The matched expression's own variable is *included* when it
        type-matches: Fig. 2(f)'s "change operator >= to !=" requires the
        COMPR operand sets to be able to keep the original operands (the
        paper's Fig. 10 rendering merely omits the zero-cost duplicates).
        """
        bound = bindings.get(binding)
        if bound is None:
            raise EMLError(f"?{binding} refers to an unbound metavariable")
        ctype = infer_expr(bound, scope.env)  # type: ignore[arg-type]
        return scope.env.same_type_vars(ctype)


def _fold(node: N.Node) -> N.Node:
    """Fold constant integer arithmetic introduced by rule templates, so a
    rule like ``range(a1, a2) -> range(a1 + 1, a2)`` applied at ``a1 = 0``
    offers the candidate ``range(1, ...)`` rather than ``range(0 + 1, ...)``
    (matching the paper's Fig. 4 rendering)."""
    if (
        isinstance(node, N.BinOp)
        and node.op in ("+", "-")
        and isinstance(node.left, N.IntLit)
        and isinstance(node.right, N.IntLit)
    ):
        value = (
            node.left.value + node.right.value
            if node.op == "+"
            else node.left.value - node.right.value
        )
        return N.IntLit(value=value, line=node.line)
    return node


def _contains_choice(node: N.Node) -> bool:
    return any(
        isinstance(sub, (ChoiceExpr, ChoiceCompare, ChoiceStmt))
        for sub in node.walk()
    )


def apply_error_model(
    module: N.Module,
    model: ErrorModel,
    param_types: Optional[Dict[str, TypeSig]] = None,
) -> Tuple[N.Module, HoleRegistry]:
    """Transform ``module`` with ``model``; return the M̃PY tree + registry."""
    transformer = Transformer(model, param_types=param_types)
    tilde = transformer.transform_module(module)
    return tilde, HoleRegistry().rebuild_from(tilde)
