"""Rule and model representations for EML, plus template marker nodes.

A rewrite rule's two sides are ordinary MPY trees with three extensions that
only ever appear inside rules:

- :class:`Prime` — the paper's ``t'`` tag: re-apply the whole error model to
  the bound subterm (nested transformations, Section 3.3);
- :class:`ScopeVars` — the paper's ``?a`` shorthand: all in-scope variables
  whose type matches the bound expression's type;
- :class:`FreeSet` — an RHS set ``{e1, ..., en}``: the synthesizer picks any
  element, at no cost beyond the rule application itself;
- :class:`CmpSet` / :class:`ArithSet` — operator sets (the paper's õpc),
  defaulting to the operator bound by ``anycmp`` / ``anyarith`` on the LHS;
- :class:`AnyArgs` — ``...`` in a call pattern: matches any argument list.

Metavariable conventions on the LHS (matching the paper's notation):
``v``/``v0``–``v9`` match variables, ``n``/``n0``–``n9`` match integer
literals, ``a``/``b`` (optionally digit-suffixed) match any expression.
``anycmp(a0, a1)`` matches any comparison, binding its operator.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.mpy import nodes as N

#: Binding key for the comparison operator captured by ``anycmp``.
CMP_OP_KEY = "__cmp_op__"
#: Binding key for the arithmetic operator captured by ``anyarith``.
ARITH_OP_KEY = "__arith_op__"

_VAR_PATTERN = re.compile(r"^v[0-9]?$")
_INT_PATTERN = re.compile(r"^n[0-9]?$")
_EXPR_PATTERN = re.compile(r"^[ab][0-9]?$")


def metavar_kind(name: str) -> Optional[str]:
    """Classify an identifier as a metavariable: 'var', 'int', 'expr'."""
    if _VAR_PATTERN.match(name):
        return "var"
    if _INT_PATTERN.match(name):
        return "int"
    if _EXPR_PATTERN.match(name):
        return "expr"
    return None


@dataclass(frozen=True)
class Prime(N.Expr):
    """``X'`` in a rule RHS: recursively transform the binding of X."""

    binding: str
    line: Optional[int] = field(default=None, compare=False)


@dataclass(frozen=True)
class ScopeVars(N.Expr):
    """``?X`` in a rule RHS: same-type in-scope variables (excluding X)."""

    binding: str
    line: Optional[int] = field(default=None, compare=False)


@dataclass(frozen=True)
class FreeSet(N.Expr):
    """``{e1, ..., en}`` in a rule RHS: a free selection set."""

    elements: Tuple[N.Expr, ...]
    line: Optional[int] = field(default=None, compare=False)


@dataclass(frozen=True)
class CmpSet(N.Expr):
    """``cmpset(x, y)``: comparison with any operator, default = bound op."""

    left: N.Expr
    right: N.Expr
    line: Optional[int] = field(default=None, compare=False)


@dataclass(frozen=True)
class ArithSet(N.Expr):
    """``arithset(x, y)``: binary op with any arithmetic operator."""

    left: N.Expr
    right: N.Expr
    line: Optional[int] = field(default=None, compare=False)


@dataclass(frozen=True)
class AnyArgs(N.Expr):
    """``...`` in a call pattern: matches the remaining arguments."""

    line: Optional[int] = field(default=None, compare=False)


@dataclass(frozen=True)
class RewriteRule:
    """A correction rule ``L -> R`` (Section 3.2).

    ``rhs is None`` encodes the special ``remove`` RHS for statement rules
    (used to optionally drop print statements, Section 6).
    """

    name: str
    lhs: N.Node
    rhs: Optional[N.Node]
    message: Optional[str] = None
    source: str = ""
    #: 1-based line of the ``rule`` header in the source ``.eml`` document
    #: (None for programmatically built rules). Excluded from equality and
    #: from ``model_digest`` so positions never perturb cache keys.
    line: Optional[int] = field(default=None, compare=False)

    @property
    def is_statement_rule(self) -> bool:
        return isinstance(self.lhs, N.Stmt)


@dataclass(frozen=True)
class InsertTopRule:
    """Optionally insert a statement block at the top of every function.

    ``body_source`` is Python text with ``$1``, ``$2``, ... placeholders for
    the function's parameters; it is parsed at application time. This is the
    rule form behind the paper's Fig. 2(e) feedback ("add the base case at
    the top to return [0] for len(poly)=1").
    """

    name: str
    body_source: str
    message: Optional[str] = None
    source: str = ""
    #: See :attr:`RewriteRule.line`.
    line: Optional[int] = field(default=None, compare=False)


Rule = object  # documentation alias: RewriteRule | InsertTopRule


@dataclass(frozen=True)
class ErrorModel:
    """An ordered collection of correction rules (Definition 2's E)."""

    name: str
    rules: Tuple[object, ...] = ()

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def rewrite_rules(self) -> Tuple[RewriteRule, ...]:
        return tuple(r for r in self.rules if isinstance(r, RewriteRule))

    def insert_top_rules(self) -> Tuple[InsertTopRule, ...]:
        return tuple(r for r in self.rules if isinstance(r, InsertTopRule))

    def prefix(self, count: int, name: Optional[str] = None) -> "ErrorModel":
        """The sub-model of the first ``count`` rules (Fig. 14(b)'s E0..En)."""
        return ErrorModel(
            name=name or f"{self.name}[:{count}]", rules=self.rules[:count]
        )

    def rule_named(self, name: str):
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise KeyError(name)
