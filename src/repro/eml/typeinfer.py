"""Coarse, best-effort type inference over MPY functions.

The EML shorthand ``?a`` denotes "all variables in scope with the same type
as expression ``a``" (Section 3.2). Python is dynamically typed, so like the
paper's tool we rely on the instructor-declared argument types plus a simple
forward pass over the function body to classify locals into coarse types.

The inference is deliberately conservative: a variable assigned values of
two different coarse types, or anything we cannot classify, becomes
``UNKNOWN`` — and ``?a`` treats UNKNOWN as compatible with everything, which
only *widens* the correction search space (soundness of the synthesizer
never depends on inference precision).
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from repro.mpy import nodes as N
from repro.mpy.values import (
    BoolType,
    CharListType,
    IntType,
    ListType,
    StrType,
    TupleType,
    TypeSig,
)


class CoarseType(enum.Enum):
    INT = "int"
    BOOL = "bool"
    STR = "str"
    LIST = "list"
    TUPLE = "tuple"
    DICT = "dict"
    NONE = "none"
    FUNC = "func"
    UNKNOWN = "?"


def coarse_of_sig(sig: TypeSig) -> CoarseType:
    """Coarse type of a declared argument signature."""
    if isinstance(sig, IntType):
        return CoarseType.INT
    if isinstance(sig, BoolType):
        return CoarseType.BOOL
    if isinstance(sig, StrType):
        return CoarseType.STR
    if isinstance(sig, (ListType, CharListType)):
        return CoarseType.LIST
    if isinstance(sig, TupleType):
        return CoarseType.TUPLE
    return CoarseType.UNKNOWN


_INT_RESULT_BUILTINS = {"len", "int", "abs", "sum"}
_LIST_RESULT_BUILTINS = {"range", "list", "sorted", "reversed"}
_STR_RESULT_BUILTINS = {"str"}
_BOOL_RESULT_BUILTINS = {"bool"}


class TypeEnv:
    """Variable name → coarse type for one function scope."""

    def __init__(self, types: Optional[Dict[str, CoarseType]] = None):
        self.types: Dict[str, CoarseType] = dict(types or {})
        self._conflicted: set = set()

    def get(self, name: str) -> CoarseType:
        return self.types.get(name, CoarseType.UNKNOWN)

    def observe(self, name: str, ctype: CoarseType) -> None:
        """Record an assignment.

        UNKNOWN observations never degrade existing knowledge (they arise
        from expressions we cannot classify), but two *different* known
        types conflict permanently — the variable really is dynamically
        retyped, so ``?a`` must treat it as compatible with everything.
        """
        if name in self._conflicted:
            return
        previous = self.types.get(name)
        if previous is None or previous is CoarseType.UNKNOWN:
            self.types[name] = ctype
        elif ctype is CoarseType.UNKNOWN:
            pass
        elif previous is not ctype:
            self._conflicted.add(name)
            self.types[name] = CoarseType.UNKNOWN

    def same_type_vars(self, ctype: CoarseType) -> Tuple[str, ...]:
        """Scope variables compatible with ``ctype`` (UNKNOWN matches all)."""
        names = []
        for name, var_type in sorted(self.types.items()):
            if var_type is CoarseType.FUNC:
                continue
            if (
                ctype is CoarseType.UNKNOWN
                or var_type is CoarseType.UNKNOWN
                or var_type is ctype
            ):
                names.append(name)
        return tuple(names)


def infer_function_env(
    fn: N.FuncDef, param_types: Optional[Dict[str, TypeSig]] = None
) -> TypeEnv:
    """Infer a TypeEnv for ``fn`` from declared params + two forward passes."""
    env = TypeEnv()
    for param in fn.params:
        sig = (param_types or {}).get(param)
        env.types[param] = coarse_of_sig(sig) if sig is not None else (
            CoarseType.UNKNOWN
        )
    # Two passes so types flowing through intermediate variables settle.
    for _ in range(2):
        _walk_block(fn.body, env)
    return env


def _walk_block(body: Tuple[N.Stmt, ...], env: TypeEnv) -> None:
    for stmt in body:
        _walk_stmt(stmt, env)


def _walk_stmt(stmt: N.Stmt, env: TypeEnv) -> None:
    if isinstance(stmt, N.Assign):
        value_type = infer_expr(stmt.value, env)
        _observe_target(stmt.target, value_type, env)
    elif isinstance(stmt, N.AugAssign):
        # x += e keeps x's coarse type for the common numeric/list cases.
        pass
    elif isinstance(stmt, N.For):
        elem = _element_type(infer_expr(stmt.iter, env))
        _observe_target(stmt.target, elem, env)
        _walk_block(stmt.body, env)
    elif isinstance(stmt, N.While):
        _walk_block(stmt.body, env)
    elif isinstance(stmt, N.If):
        _walk_block(stmt.body, env)
        _walk_block(stmt.orelse, env)
    elif isinstance(stmt, N.FuncDef):
        env.observe(stmt.name, CoarseType.FUNC)


def _observe_target(target: N.Expr, ctype: CoarseType, env: TypeEnv) -> None:
    if isinstance(target, N.Var):
        env.observe(target.name, ctype)
    elif isinstance(target, N.TupleLit):
        for elt in target.elts:
            _observe_target(elt, CoarseType.UNKNOWN, env)


def _element_type(container: CoarseType) -> CoarseType:
    if container is CoarseType.STR:
        return CoarseType.STR
    # Lists in these assignments are overwhelmingly lists of ints; stay
    # UNKNOWN rather than guessing wrong.
    return CoarseType.UNKNOWN


def infer_expr(expr: N.Expr, env: TypeEnv) -> CoarseType:
    """Coarse type of an expression under ``env``."""
    if isinstance(expr, N.IntLit):
        return CoarseType.INT
    if isinstance(expr, N.BoolLit):
        return CoarseType.BOOL
    if isinstance(expr, N.StrLit):
        return CoarseType.STR
    if isinstance(expr, N.NoneLit):
        return CoarseType.NONE
    if isinstance(expr, (N.ListLit, N.ListComp)):
        return CoarseType.LIST
    if isinstance(expr, N.TupleLit):
        return CoarseType.TUPLE
    if isinstance(expr, N.DictLit):
        return CoarseType.DICT
    if isinstance(expr, N.Lambda):
        return CoarseType.FUNC
    if isinstance(expr, N.Var):
        return env.get(expr.name)
    if isinstance(expr, N.Compare):
        return CoarseType.BOOL
    if isinstance(expr, N.BoolOp):
        left = infer_expr(expr.left, env)
        right = infer_expr(expr.right, env)
        return left if left is right else CoarseType.UNKNOWN
    if isinstance(expr, N.UnaryOp):
        if expr.op == "not":
            return CoarseType.BOOL
        return infer_expr(expr.operand, env)
    if isinstance(expr, N.BinOp):
        return _infer_binop(expr, env)
    if isinstance(expr, N.Index):
        container = infer_expr(expr.obj, env)
        if container is CoarseType.STR:
            return CoarseType.STR
        return CoarseType.UNKNOWN
    if isinstance(expr, N.Slice):
        return infer_expr(expr.obj, env)
    if isinstance(expr, N.IfExp):
        body = infer_expr(expr.body, env)
        orelse = infer_expr(expr.orelse, env)
        return body if body is orelse else CoarseType.UNKNOWN
    if isinstance(expr, N.Call):
        return _infer_call(expr, env)
    return CoarseType.UNKNOWN


def _infer_binop(expr: N.BinOp, env: TypeEnv) -> CoarseType:
    left = infer_expr(expr.left, env)
    right = infer_expr(expr.right, env)
    if expr.op == "+":
        if CoarseType.STR in (left, right):
            return CoarseType.STR
        if CoarseType.LIST in (left, right):
            return CoarseType.LIST
        if CoarseType.TUPLE in (left, right):
            return CoarseType.TUPLE
        if left is CoarseType.INT and right is CoarseType.INT:
            return CoarseType.INT
        return CoarseType.UNKNOWN
    if expr.op == "*":
        if CoarseType.STR in (left, right):
            return CoarseType.STR
        if CoarseType.LIST in (left, right):
            return CoarseType.LIST
        if left is CoarseType.INT and right is CoarseType.INT:
            return CoarseType.INT
        return CoarseType.UNKNOWN
    if expr.op in ("-", "//", "%", "**"):
        if left is CoarseType.INT and right is CoarseType.INT:
            return CoarseType.INT
        return CoarseType.UNKNOWN
    return CoarseType.UNKNOWN  # '/' may be float; stay unknown


def _infer_call(expr: N.Call, env: TypeEnv) -> CoarseType:
    if isinstance(expr.func, N.Var):
        name = expr.func.name
        if name in _INT_RESULT_BUILTINS:
            return CoarseType.INT
        if name in _LIST_RESULT_BUILTINS:
            return CoarseType.LIST
        if name in _STR_RESULT_BUILTINS:
            return CoarseType.STR
        if name in _BOOL_RESULT_BUILTINS:
            return CoarseType.BOOL
        if name == "tuple":
            return CoarseType.TUPLE
        return CoarseType.UNKNOWN
    if isinstance(expr.func, N.Attribute):
        attr = expr.func.attr
        if attr in ("index", "count", "find"):
            return CoarseType.INT
        if attr in ("replace", "upper", "lower", "strip", "join"):
            return CoarseType.STR
        if attr in ("split", "keys", "values", "items"):
            return CoarseType.LIST
        if attr in ("startswith", "endswith"):
            return CoarseType.BOOL
    return CoarseType.UNKNOWN
