"""EML: the error model language of the paper (Section 3).

An error model is a set of correction rules ``L -> R`` over MPY program
elements. Applying a model to an MPY program (the transformation function
T_E of Section 3.3) yields an M̃PY program whose choice nodes encode every
allowed combination of corrections.

- :mod:`repro.eml.rules` — rule representations and the model container,
- :mod:`repro.eml.parser` — the textual ``.eml`` format,
- :mod:`repro.eml.matcher` — pattern matching with metavariables,
- :mod:`repro.eml.transform` — the T_E transformation (Fig. 9),
- :mod:`repro.eml.wellformed` — Definitions 1–2 and the Theorem 1 guard,
- :mod:`repro.eml.typeinfer` — coarse type inference backing ``?a``.
"""

from repro.eml.rules import ErrorModel, InsertTopRule, RewriteRule
from repro.eml.parser import parse_error_model, parse_rule
from repro.eml.transform import apply_error_model
from repro.eml.wellformed import EMLWellFormednessError, check_model
from repro.eml.errors import EMLError, EMLSyntaxError

__all__ = [
    "ErrorModel",
    "RewriteRule",
    "InsertTopRule",
    "parse_error_model",
    "parse_rule",
    "apply_error_model",
    "check_model",
    "EMLError",
    "EMLSyntaxError",
    "EMLWellFormednessError",
]
