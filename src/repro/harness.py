"""Experiment harness: regenerates every table and figure of the paper.

Shared by the benchmark suite and the CLI. Each function runs one
experiment over synthetic corpora and returns structured results; the
``format_*`` helpers print them in the paper's layout next to the
published numbers (EXPERIMENTS.md records a full run).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.api import FIXED
from repro.eml.rules import ErrorModel
from repro.engines import BoundedVerifier
from repro.engines.base import Engine
from repro.problems import Problem, all_problems, get_problem
from repro.service.runner import BatchItem, BatchRunner
from repro.studentgen import Corpus, generate_corpus

DEFAULT_TIMEOUT = 45.0


@dataclass
class SubmissionRecord:
    """Outcome of the pipeline on one synthetic submission."""

    origin: str
    status: str
    cost: Optional[int]
    wall_time: float
    defects: Tuple[str, ...] = ()


@dataclass
class ProblemRun:
    """One problem's corpus pushed through the pipeline."""

    problem: str
    records: List[SubmissionRecord] = field(default_factory=list)
    corpus_correct: int = 0
    corpus_syntax: int = 0

    @property
    def incorrect(self) -> int:
        return len(self.records)

    @property
    def fixed(self) -> int:
        return sum(1 for r in self.records if r.status == FIXED)

    @property
    def fixed_percent(self) -> float:
        return 100.0 * self.fixed / self.incorrect if self.records else 0.0

    @property
    def avg_time(self) -> float:
        times = [r.wall_time for r in self.records]
        return sum(times) / len(times) if times else 0.0

    @property
    def median_time(self) -> float:
        times = [r.wall_time for r in self.records]
        return statistics.median(times) if times else 0.0

    def cost_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for record in self.records:
            if record.status == FIXED and record.cost:
                histogram[record.cost] = histogram.get(record.cost, 0) + 1
        return histogram


def run_problem(
    problem: Problem,
    corpus: Optional[Corpus] = None,
    corpus_size: int = 24,
    seed: int = 0,
    timeout_s: float = DEFAULT_TIMEOUT,
    engine: Optional[Engine] = None,
    model: Optional[ErrorModel] = None,
    verifier: Optional[BoundedVerifier] = None,
    jobs: int = 1,
    backend: Optional[str] = None,
    explorer: Optional[bool] = None,
) -> ProblemRun:
    """Run the feedback pipeline over a problem's (synthetic) test set.

    The corpus goes through the batch grading service: duplicate (and
    α-renamed) submissions are solved once, and ``jobs > 1`` fans the
    distinct ones out over a process pool. ``engine`` instances are a
    serial-only feature; parallel runs name their engine. ``backend``
    selects the execution substrate (compiled closures by default);
    ``explorer`` toggles exploration-table blocking (on by default —
    ``False`` is the per-candidate-sweep ablation).
    """
    if corpus is None:
        corpus = generate_corpus(
            problem, incorrect_count=corpus_size, seed=seed
        )
    if model is None:
        model = problem.model  # NB: an empty ErrorModel is falsy
    run = ProblemRun(
        problem=problem.name,
        corpus_correct=len(corpus.correct),
        corpus_syntax=len(corpus.syntax_errors),
    )
    runner = BatchRunner(
        problem,
        model=model,
        jobs=jobs,
        timeout_s=timeout_s,
        engine=engine,
        verifier=verifier,
        backend=backend,
        explorer=explorer,
    )
    items = [
        BatchItem(sid=f"s{index:04d}", source=submission.source)
        for index, submission in enumerate(corpus.incorrect)
    ]
    for submission, result in zip(corpus.incorrect, runner.run(items)):
        run.records.append(
            SubmissionRecord(
                origin=submission.origin,
                status=result.report.status,
                cost=result.report.cost,
                wall_time=result.report.wall_time,
                defects=submission.defects,
            )
        )
    return run


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def run_table1(
    corpus_size: int = 24,
    seed: int = 0,
    timeout_s: float = DEFAULT_TIMEOUT,
    problems: Optional[Sequence[str]] = None,
    jobs: int = 1,
    backend: Optional[str] = None,
    explorer: Optional[bool] = None,
) -> List[Tuple[Problem, ProblemRun]]:
    selected = (
        [get_problem(name) for name in problems]
        if problems
        else list(all_problems())
    )
    results = []
    for problem in selected:
        run = run_problem(
            problem,
            corpus_size=corpus_size,
            seed=seed,
            timeout_s=timeout_s,
            jobs=jobs,
            backend=backend,
            explorer=explorer,
        )
        results.append((problem, run))
    return results


def format_table1(rows: List[Tuple[Problem, ProblemRun]]) -> str:
    lines = [
        f"{'Benchmark':22s} {'TestSet':>7s} {'Incorr':>6s} {'Fixed':>5s} "
        f"{'Fixed%':>6s} {'Avg(s)':>7s} {'Med(s)':>7s} | "
        f"{'paper%':>6s} {'paperAvg':>8s}"
    ]
    lines.append("-" * len(lines[0]))
    total_incorrect = 0
    total_fixed = 0
    for problem, run in rows:
        paper = problem.table1
        total_incorrect += run.incorrect
        total_fixed += run.fixed
        lines.append(
            f"{problem.name:22s} {run.incorrect + run.corpus_correct:7d} "
            f"{run.incorrect:6d} {run.fixed:5d} {run.fixed_percent:6.1f} "
            f"{run.avg_time:7.2f} {run.median_time:7.2f} | "
            f"{paper.feedback_percent if paper else 0:6.1f} "
            f"{paper.avg_time_s if paper else 0:8.2f}"
        )
    overall = 100.0 * total_fixed / total_incorrect if total_incorrect else 0.0
    lines.append("-" * len(lines[0]))
    lines.append(
        f"{'OVERALL':22s} {'':7s} {total_incorrect:6d} {total_fixed:5d} "
        f"{overall:6.1f}{'':>16s} | {'64.0':>6s} (paper overall ~64%)"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 14(a): distribution of number of corrections
# ---------------------------------------------------------------------------


def fig14a_distribution(
    rows: List[Tuple[Problem, ProblemRun]]
) -> Dict[str, Dict[int, int]]:
    return {problem.name: run.cost_histogram() for problem, run in rows}


def format_fig14a(distributions: Dict[str, Dict[int, int]]) -> str:
    lines = [f"{'Problem':22s} " + " ".join(f"c={k}" for k in range(1, 5))]
    for name, histogram in distributions.items():
        counts = [histogram.get(k, 0) for k in range(1, 5)]
        lines.append(f"{name:22s} " + " ".join(f"{c:3d}" for c in counts))
    totals = [
        sum(h.get(k, 0) for h in distributions.values()) for k in range(1, 5)
    ]
    lines.append(f"{'TOTAL':22s} " + " ".join(f"{c:3d}" for c in totals))
    lines.append(
        "(paper Fig. 14(a): monotonically decreasing counts from 1 to 4 "
        "corrections, log scale)"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 14(b): corrections vs error-model size (E0..En)
# ---------------------------------------------------------------------------


def run_fig14b(
    problem: Problem,
    corpus_size: int = 24,
    seed: int = 0,
    timeout_s: float = DEFAULT_TIMEOUT,
) -> List[Tuple[str, int]]:
    """Fix counts under growing rule-prefix models E0 ⊂ E1 ⊂ ... ⊂ E."""
    corpus = generate_corpus(problem, incorrect_count=corpus_size, seed=seed)
    verifier = BoundedVerifier(problem.spec)
    results = []
    for size in range(0, len(problem.model) + 1):
        model = problem.model.prefix(size, name=f"E{size}")
        run = run_problem(
            problem,
            corpus=corpus,
            timeout_s=timeout_s,
            model=model,
            verifier=verifier,
        )
        results.append((f"E{size}", run.fixed))
    return results


def format_fig14b(problem_name: str, results: List[Tuple[str, int]]) -> str:
    lines = [f"Problems corrected vs error-model size — {problem_name}"]
    for label, fixed in results:
        lines.append(f"  {label:4s} {fixed:4d} " + "#" * fixed)
    lines.append(
        "(paper Fig. 14(b): adding rules monotonically increases corrected "
        "attempts)"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 14(c): generalization of the computeDeriv model
# ---------------------------------------------------------------------------


def run_fig14c(
    target_names: Sequence[str] = (
        "evalPoly-6.00x",
        "iterGCD-6.00x",
        "oddTuples-6.00x",
        "recurPower-6.00x",
        "iterPower-6.00x",
    ),
    corpus_size: int = 24,
    seed: int = 0,
    timeout_s: float = DEFAULT_TIMEOUT,
) -> List[Tuple[str, int, int]]:
    """(problem, fixed with computeDeriv model, fixed with own model)."""
    deriv_model = get_problem("compDeriv-6.00x").model
    results = []
    for name in target_names:
        problem = get_problem(name)
        corpus = generate_corpus(
            problem, incorrect_count=corpus_size, seed=seed
        )
        verifier = BoundedVerifier(problem.spec)
        with_deriv = run_problem(
            problem,
            corpus=corpus,
            timeout_s=timeout_s,
            model=deriv_model,
            verifier=verifier,
        )
        with_own = run_problem(
            problem, corpus=corpus, timeout_s=timeout_s, verifier=verifier
        )
        results.append((name, with_deriv.fixed, with_own.fixed))
    return results


def format_fig14c(results: List[Tuple[str, int, int]]) -> str:
    lines = [
        f"{'Problem':22s} {'E-comp-deriv':>12s} {'E (own)':>8s}",
        "-" * 46,
    ]
    for name, deriv_fixed, own_fixed in results:
        lines.append(f"{name:22s} {deriv_fixed:12d} {own_fixed:8d}")
    lines.append(
        "(paper Fig. 14(c): the compute-deriv model fixes a fraction of "
        "other problems' attempts, fewer than their specialized models)"
    )
    return "\n".join(lines)
