"""Corpus assembly: deterministic synthetic test sets per problem.

A corpus mirrors one Table 1 row's structure: a test set of incorrect
submissions drawn from three populations —

- mutated correct solutions (1–4 injected defects, mixture matching the
  paper's Fig. 14(a) correction distribution),
- big conceptual errors (never fixable by local rules),
- trivial attempts.

Every emitted incorrect submission is checked to actually be incorrect
(mutants that happen to stay equivalent are discarded), and correct
attempts can be included for end-to-end grading runs.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.api import ALREADY_CORRECT, grade_submission
from repro.core.spec import ProblemSpec
from repro.mpy import parse_program, to_source
from repro.mpy.errors import FrontendError
from repro.problems.registry import Problem
from repro.studentgen.conceptual import (
    CONCEPTUAL,
    SYNTAX_ERROR_TEMPLATES,
    TRIVIAL_TEMPLATES,
)
from repro.studentgen.mutator import mutate
from repro.studentgen.variants import PROBLEM_FAMILY, variants_for

#: Fallback mixture for problems without a Table 1 row.
DEFAULT_UNFIXABLE_SHARE = 0.30

#: Distribution of injected-defect counts, shaped like paper Fig. 14(a)
#: (log-scale drop-off from 1 to 4 corrections).
MUTATION_COUNT_WEIGHTS = ((1, 0.55), (2, 0.25), (3, 0.13), (4, 0.07))


@dataclass(frozen=True)
class Submission:
    """One synthetic student attempt."""

    source: str
    origin: str  # "mutated" | "conceptual" | "trivial" | "correct" | "syntax"
    defects: Tuple[str, ...] = ()


@dataclass
class Corpus:
    """A problem's synthetic test set."""

    problem: str
    incorrect: List[Submission] = field(default_factory=list)
    correct: List[Submission] = field(default_factory=list)
    syntax_errors: List[Submission] = field(default_factory=list)

    @property
    def test_set_size(self) -> int:
        return len(self.incorrect) + len(self.correct)


def _draw_mutation_count(rng: random.Random) -> int:
    roll = rng.random()
    cumulative = 0.0
    for count, weight in MUTATION_COUNT_WEIGHTS:
        cumulative += weight
        if roll <= cumulative:
            return count
    return MUTATION_COUNT_WEIGHTS[-1][0]


def _trivial_source(spec: ProblemSpec, template: str) -> str:
    params = ", ".join(spec.arg_names or tuple(f"a{i}" for i in range(len(spec.arg_types))))
    return template.format(fn=spec.student_function, params=params)


def generate_corpus(
    problem: Problem,
    incorrect_count: int = 24,
    correct_count: int = 4,
    syntax_count: int = 2,
    seed: int = 0,
    max_attempts_factor: int = 40,
) -> Corpus:
    """Build a deterministic corpus for ``problem``.

    ``incorrect_count`` submissions are guaranteed incorrect (graded
    against the problem's own bounded verifier); generation draws mutants
    until the target is met or ``max_attempts_factor * incorrect_count``
    candidate mutants have been tried.
    """
    rng = random.Random(zlib.crc32(f"{seed}:{problem.name}".encode()))
    spec = problem.spec
    corpus = Corpus(problem=problem.name)

    # Mixture calibration (DESIGN.md substitution 2): each Table 1 row
    # reports how many of its incorrect attempts the tool could not fix;
    # the unfixable population (conceptual + trivial attempts) is sized to
    # that share. Duplicated conceptual sources are deliberate — the paper
    # found 260/541 evalPoly attempts sharing ONE conceptual error.
    if problem.table1 is not None:
        # Half of the paper's unfixable share: the mutated population also
        # fails organically (multi-defect mutants outside any rule's
        # reach), so injecting the full share would overshoot.
        unfixable = (1.0 - problem.table1.feedback_percent / 100.0) * 0.5
        unfixable = min(0.45, max(0.08, unfixable))
    else:
        unfixable = DEFAULT_UNFIXABLE_SHARE
    conceptual_pool = list(CONCEPTUAL.get(PROBLEM_FAMILY[problem.name], ()))
    n_conceptual = (
        round(incorrect_count * unfixable * 0.7) if conceptual_pool else 0
    )
    n_trivial = round(incorrect_count * unfixable * 0.3)

    # -- conceptual & trivial ------------------------------------------------
    for source in rng.choices(conceptual_pool, k=n_conceptual) if n_conceptual else []:
        if grade_submission(source, spec) == "incorrect":
            corpus.incorrect.append(
                Submission(source=source, origin="conceptual")
            )
    for _ in range(n_trivial):
        source = _trivial_source(spec, rng.choice(TRIVIAL_TEMPLATES))
        if grade_submission(source, spec) == "incorrect":
            corpus.incorrect.append(Submission(source=source, origin="trivial"))

    # -- mutated --------------------------------------------------------------
    variant_sources = variants_for(problem.name)
    variant_modules = [parse_program(s) for s in variant_sources]
    attempts = 0
    budget = max_attempts_factor * max(1, incorrect_count)
    seen = {s.source for s in corpus.incorrect}
    while (
        len(corpus.incorrect) < incorrect_count and attempts < budget
    ):
        attempts += 1
        base = rng.choice(variant_modules)
        count = _draw_mutation_count(rng)
        mutated, defects = mutate(base, rng, count=count)
        if not defects:
            continue
        try:
            source = to_source(mutated)
            parse_program(source)  # printable and re-parseable
        except FrontendError:
            continue
        if source in seen:
            continue
        if grade_submission(source, spec) != "incorrect":
            continue
        seen.add(source)
        corpus.incorrect.append(
            Submission(
                source=source, origin="mutated", defects=tuple(defects)
            )
        )

    # -- correct & syntax-error attempts -------------------------------------
    for index in range(correct_count):
        source = variant_sources[index % len(variant_sources)]
        if grade_submission(source, spec) == ALREADY_CORRECT:
            corpus.correct.append(Submission(source=source, origin="correct"))
    for index in range(syntax_count):
        template = SYNTAX_ERROR_TEMPLATES[index % len(SYNTAX_ERROR_TEMPLATES)]
        corpus.syntax_errors.append(
            Submission(
                source=_trivial_source(spec, template), origin="syntax"
            )
        )
    return corpus
