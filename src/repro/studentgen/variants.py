"""Alternative correct solutions per problem.

Real students solve the same problem with very different algorithms
(paper Fig. 2 shows three for computeDeriv alone). Mutating several
distinct correct solutions reproduces that diversity in the corpus.
Every variant here must be verified-equivalent to the reference; the
test suite checks that.
"""

from __future__ import annotations

from typing import Dict, List

VARIANTS: Dict[str, List[str]] = {
    "compDeriv": [
        # while-loop with explicit index (the Fig. 2(c) family)
        """def computeDeriv(poly):
    if len(poly) == 1:
        return [0]
    deriv = []
    i = 1
    while i < len(poly):
        deriv.append(poly[i] * i)
        i += 1
    return deriv
""",
        # comprehension style
        """def computeDeriv(poly):
    if len(poly) == 1:
        return [0]
    return [poly[i] * i for i in range(1, len(poly))]
""",
        # build-then-slice (the reference's own shape)
        """def computeDeriv(poly):
    result = []
    for i in range(len(poly)):
        result = result + [i * poly[i]]
    if len(poly) == 1:
        return result
    return result[1:]
""",
    ],
    "evalPoly": [
        """def evaluatePoly(poly, x):
    total = 0
    for i in range(len(poly)):
        total += poly[i] * x ** i
    return total
""",
        """def evaluatePoly(poly, x):
    total = 0
    power = 1
    for coeff in poly:
        total += coeff * power
        power = power * x
    return total
""",
    ],
    "oddTuples": [
        """def oddTuples(aTup):
    out = ()
    for i in range(0, len(aTup), 2):
        out += (aTup[i],)
    return out
""",
        """def oddTuples(aTup):
    return aTup[::2]
""",
        """def oddTuples(aTup):
    out = ()
    i = 0
    while i < len(aTup):
        if i % 2 == 0:
            out = out + (aTup[i],)
        i += 1
    return out
""",
    ],
    "prodBySum": [
        """def prodBySum(m, n):
    result = 0
    count = 0
    while count < abs(n):
        result += m
        count += 1
    if n < 0:
        return -result
    return result
""",
        """def prodBySum(m, n):
    total = 0
    for i in range(abs(n)):
        total += m
    if n < 0:
        total = -total
    return total
""",
    ],
    "iterPower": [
        """def iterPower(base, exp):
    result = 1
    for i in range(exp):
        result = result * base
    return result
""",
        """def iterPower(base, exp):
    result = 1
    while exp > 0:
        result *= base
        exp -= 1
    return result
""",
    ],
    "recurPower": [
        """def recurPower(base, exp):
    if exp == 0:
        return 1
    return base * recurPower(base, exp - 1)
""",
        """def recurPower(base, exp):
    if exp <= 0:
        return 1
    else:
        return base * recurPower(base, exp - 1)
""",
    ],
    "iterGCD": [
        """def iterGCD(a, b):
    while b != 0:
        temp = a % b
        a = b
        b = temp
    return a
""",
        """def iterGCD(a, b):
    while b > 0:
        a, b = b, a % b
    return a
""",
    ],
    "hangman1": [
        """def isWordGuessed(secretWord, lettersGuessed):
    for letter in secretWord:
        if letter not in lettersGuessed:
            return False
    return True
""",
        """def isWordGuessed(secretWord, lettersGuessed):
    found = 0
    for letter in secretWord:
        if letter in lettersGuessed:
            found += 1
    return found == len(secretWord)
""",
    ],
    "hangman2": [
        """def getGuessedWord(secretWord, lettersGuessed):
    guessed = ""
    for letter in secretWord:
        if letter in lettersGuessed:
            guessed = guessed + letter
        else:
            guessed = guessed + "_"
    return guessed
""",
        """def getGuessedWord(secretWord, lettersGuessed):
    out = []
    for letter in secretWord:
        if letter in lettersGuessed:
            out.append(letter)
        else:
            out.append("_")
    return "".join(out)
""",
    ],
    "compBal": [
        """def compBal(price, rate):
    total = price + price * rate // 100
    payment = total // 12
    extra = total % 12
    for month in range(1, 13):
        if month <= extra:
            print(month, payment + 1)
        else:
            print(month, payment)
""",
    ],
    "stockMarket1": [
        """def isStable(prices):
    swings = 0
    for i in range(1, len(prices)):
        if abs(prices[i] - prices[i - 1]) > 3:
            swings += 1
    return swings < 3
""",
        """def isStable(prices):
    swings = 0
    i = 1
    while i < len(prices):
        delta = prices[i] - prices[i - 1]
        if delta > 3 or delta < -3:
            swings += 1
        i += 1
    return swings < 3
""",
    ],
    "stockMarket2": [
        """def isCalm(prices, start, end):
    highest = prices[start]
    lowest = prices[start]
    for i in range(start, end + 1):
        if prices[i] > highest:
            highest = prices[i]
        if prices[i] < lowest:
            lowest = prices[i]
    return highest - lowest < 5
""",
    ],
    "restaurantRush": [
        """def maxRush(revenue):
    best = 0
    current = 0
    for r in revenue:
        current = current + r
        if current < 0:
            current = 0
        if current > best:
            best = current
    return best
""",
        """def maxRush(revenue):
    best = 0
    for i in range(len(revenue)):
        total = 0
        for j in range(i, len(revenue)):
            total += revenue[j]
            if total > best:
                best = total
    return best
""",
    ],
}

#: Problem-registry name → variants key.
PROBLEM_FAMILY = {
    "prodBySum-6.00": "prodBySum",
    "oddTuples-6.00": "oddTuples",
    "compDeriv-6.00": "compDeriv",
    "evalPoly-6.00": "evalPoly",
    "compBal-stdin-6.00": "compBal",
    "compDeriv-6.00x": "compDeriv",
    "evalPoly-6.00x": "evalPoly",
    "oddTuples-6.00x": "oddTuples",
    "iterPower-6.00x": "iterPower",
    "recurPower-6.00x": "recurPower",
    "iterGCD-6.00x": "iterGCD",
    "hangman1-str-6.00x": "hangman1",
    "hangman2-str-6.00x": "hangman2",
    "stock-market-I": "stockMarket1",
    "stock-market-II": "stockMarket2",
    "restaurant-rush": "restaurantRush",
}


def variants_for(problem_name: str) -> List[str]:
    return VARIANTS[PROBLEM_FAMILY[problem_name]]
