"""Big-conceptual-error submissions (paper Section 5.3 and Fig. 13).

These are wrong at the algorithm level: no combination of local correction
rules fixes them, so the tool is expected to report no-fix — they populate
the unfixable share of each Table 1 row.
"""

from __future__ import annotations

from typing import Dict, List

CONCEPTUAL: Dict[str, List[str]] = {
    "compDeriv": [
        # accumulates a sum instead of building a list
        """def computeDeriv(poly):
    total = 0
    for i in range(len(poly)):
        total += i * poly[i]
    return total
""",
        # reverses the polynomial instead of differentiating
        """def computeDeriv(poly):
    deriv = []
    for c in poly:
        deriv = [c] + deriv
    return deriv
""",
    ],
    "evalPoly": [
        # paper Fig. 13(a): uses list.index, wrong on repeated coefficients
        """def evaluatePoly(poly, x):
    result = 0
    for i in list(poly):
        result += i * x ** poly.index(i)
    return result
""",
        # ignores x entirely
        """def evaluatePoly(poly, x):
    result = 0
    for c in poly:
        result += c
    return result
""",
    ],
    "oddTuples": [
        # returns the odd-indexed elements instead of even-indexed
        """def oddTuples(aTup):
    out = ()
    for x in aTup:
        if x % 2 == 1:
            out += (x,)
    return out
""",
    ],
    "prodBySum": [
        """def prodBySum(m, n):
    return m + n
""",
    ],
    "compBal": [
        """def compBal(price, rate):
    print(price // 12)
""",
    ],
    "iterPower": [
        # multiplies base by the loop counter
        """def iterPower(base, exp):
    result = 1
    for i in range(exp):
        result = result * i
    return result
""",
    ],
    "recurPower": [
        # recursion never terminates toward the base case
        """def recurPower(base, exp):
    if exp == 0:
        return 1
    return base * recurPower(base, exp)
""",
    ],
    "iterGCD": [
        # returns the smaller argument, not the gcd
        """def iterGCD(a, b):
    if a < b:
        return a
    return b
""",
    ],
    "hangman1": [
        # checks the guesses against the word instead of the reverse
        """def isWordGuessed(secretWord, lettersGuessed):
    for letter in lettersGuessed:
        if letter not in secretWord:
            return False
    return True
""",
    ],
    "hangman2": [
        # paper Fig. 13(b): replaces guessed letters with '_'
        """def getGuessedWord(secretWord, lettersGuessed):
    for letter in lettersGuessed:
        secretWord = secretWord.replace(letter, "_")
    return secretWord
""",
    ],
    "stockMarket1": [
        # compares against the first day only
        """def isStable(prices):
    for p in prices:
        if abs(p - prices[0]) > 3:
            return False
    return True
""",
    ],
    "stockMarket2": [
        # ignores the window entirely
        """def isCalm(prices, start, end):
    return max(prices) - min(prices) < 5
""",
    ],
    "restaurantRush": [
        # sums only the positive entries (not contiguous)
        """def maxRush(revenue):
    best = 0
    for r in revenue:
        if r > 0:
            best += r
    return best
""",
    ],
}

#: Trivial/empty attempts ("many student attempts that were empty or
#: performing trivial computations", Section 5.3). ``{fn}`` and
#: ``{params}`` are substituted per problem.
TRIVIAL_TEMPLATES = [
    "def {fn}({params}):\n    return\n",
    "def {fn}({params}):\n    return 0\n",
    "def {fn}({params}):\n    print(\"hello\")\n",
    "def {fn}({params}):\n    pass\n",
]

#: Syntax-error attempts (removed before the paper's test set).
SYNTAX_ERROR_TEMPLATES = [
    "def {fn}({params}:\n    return 0\n",
    "def {fn}({params})\n    return 0\n",
    "def {fn}({params}):\nreturn 0\n",
]
