"""Synthetic student-submission corpora.

The paper evaluates on thousands of real 6.00/6.00x submissions, which are
proprietary. This package generates per-problem corpora with the same
structure (DESIGN.md, substitution 2):

- *mutated* attempts: inverse correction-rule applications over several
  algorithmically distinct correct solutions — the paper's observation
  that "errors tend to follow predictable patterns" run in reverse;
- *conceptual* attempts: the Section 5.3 "big conceptual errors"
  (Fig. 13's ``list.index`` misuse and inverted ``replace``), which local
  correction rules cannot fix;
- *trivial* attempts: empty or print-only submissions;
- *syntactic* attempts: submissions with syntax errors (Table 1 removes
  these before the test set).

Generation is seeded and deterministic.
"""

from repro.studentgen.corpus import Corpus, Submission, generate_corpus
from repro.studentgen.mutator import enumerate_mutations, mutate

__all__ = [
    "Corpus",
    "Submission",
    "generate_corpus",
    "enumerate_mutations",
    "mutate",
]
