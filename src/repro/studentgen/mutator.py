"""AST mutations: the inverse image of correction rules.

Students' predictable mistakes (Section 1: "everyone is solving the same
problem after having attended the same lectures") are modeled by running
the correction-rule catalog *backwards*: each mutation below is undone by
one application of a typical EML rule — plus a few mutations deliberately
outside any rule's reach (statement deletion, arbitrary variable swaps), so
the generated corpora include submissions the tool cannot fix, like the
real test sets do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.mpy import nodes as N

#: Realistic operator-confusion table for comparisons.
_COMPARE_CONFUSIONS = {
    "<": ("<=", ">"),
    "<=": ("<", ">="),
    ">": (">=", "<"),
    ">=": (">", "!="),
    "==": ("!=", ">="),
    "!=": ("==",),
    "in": ("not in",),
    "not in": ("in",),
}

#: Arithmetic operator confusions (e.g. iterPower's ``+=`` for ``*=``).
_ARITH_CONFUSIONS = {
    "+": ("-", "*"),
    "-": ("+",),
    "*": ("+", "**"),
    "**": ("*",),
    "//": ("/", "%"),
    "%": ("//",),
    "/": ("//",),
}


@dataclass(frozen=True)
class Mutation:
    """A single localized defect to inject."""

    kind: str
    description: str
    build: Callable[[], N.Module]

    def apply(self) -> N.Module:
        return self.build()


def _substitute(root: N.Node, old: N.Node, new: N.Node) -> N.Node:
    """Rebuild ``root`` with the node ``old`` (by identity) replaced."""
    if root is old:
        return new
    return N.map_children(root, lambda child: _substitute(child, old, new))


def _scope_names(module: N.Module) -> List[str]:
    names: List[str] = []
    for stmt in module.body:
        if isinstance(stmt, N.FuncDef):
            names.extend(stmt.params)
            for node in N.Module(body=stmt.body).walk():
                if isinstance(node, (N.Assign, N.For)) and isinstance(
                    getattr(node, "target", None), N.Var
                ):
                    if node.target.name not in names:
                        names.append(node.target.name)
    return names


def enumerate_mutations(module: N.Module) -> List[Mutation]:
    """Every applicable single mutation of ``module``."""
    mutations: List[Mutation] = []
    names = _scope_names(module)

    def sub(kind: str, description: str, old: N.Node, new: N.Node) -> None:
        mutations.append(
            Mutation(
                kind=kind,
                description=description,
                build=lambda: _substitute(module, old, new),  # type: ignore[return-value]
            )
        )

    for node in module.walk():
        if isinstance(node, N.IntLit):
            for delta in (1, -1):
                sub(
                    "int-literal",
                    f"{node.value} -> {node.value + delta}",
                    node,
                    N.IntLit(node.value + delta, line=node.line),
                )
            if node.value != 0:
                sub("int-literal", f"{node.value} -> 0", node, N.IntLit(0))
        elif isinstance(node, N.Compare):
            for op in _COMPARE_CONFUSIONS.get(node.op, ()):
                sub(
                    "compare-op",
                    f"{node.op} -> {op}",
                    node,
                    N.Compare(op=op, left=node.left, right=node.right,
                              line=node.line),
                )
        elif isinstance(node, N.BinOp):
            for op in _ARITH_CONFUSIONS.get(node.op, ()):
                sub(
                    "arith-op",
                    f"{node.op} -> {op}",
                    node,
                    N.BinOp(op=op, left=node.left, right=node.right,
                            line=node.line),
                )
        elif isinstance(node, N.AugAssign):
            for op in _ARITH_CONFUSIONS.get(node.op, ()):
                sub(
                    "aug-op",
                    f"{node.op}= -> {op}=",
                    node,
                    N.AugAssign(target=node.target, op=op, value=node.value,
                                line=node.line),
                )
        elif isinstance(node, N.Index):
            index = node.index
            for delta in (1, -1):
                sub(
                    "index-shift",
                    f"index {delta:+d}",
                    node,
                    N.Index(
                        obj=node.obj,
                        index=N.BinOp(
                            op="+" if delta > 0 else "-",
                            left=index,
                            right=N.IntLit(abs(delta)),
                        ),
                        line=node.line,
                    ),
                )
        elif isinstance(node, N.Slice):
            if node.lower is not None:
                sub(
                    "slice-bound",
                    "drop slice lower bound",
                    node,
                    N.Slice(obj=node.obj, lower=None, upper=node.upper,
                            step=node.step, line=node.line),
                )
        elif isinstance(node, N.Call) and isinstance(node.func, N.Var):
            if node.func.name == "range" and len(node.args) == 2:
                sub(
                    "range-args",
                    "drop range start",
                    node,
                    N.Call(func=node.func, args=(node.args[1],),
                           line=node.line),
                )
        elif isinstance(node, N.Var) and node.name in names:
            for other in names:
                if other != node.name:
                    sub(
                        "var-swap",
                        f"{node.name} -> {other}",
                        node,
                        N.Var(name=other, line=node.line),
                    )
                    break  # one swap target per site keeps the pool bounded

    # Statement-level mutations.
    for stmt in module.walk():
        if isinstance(stmt, N.If) and not stmt.orelse:
            sub("drop-guard", "delete guarded block", stmt, N.Pass(line=stmt.line))
        elif isinstance(stmt, N.Return) and stmt.value is not None:
            if not isinstance(stmt.value, N.Var) and names:
                sub(
                    "return-swap",
                    f"return {names[0]}",
                    stmt,
                    N.Return(value=N.Var(names[0]), line=stmt.line),
                )
    return mutations


#: How often each defect kind appears in student code, relative weights.
#: Arithmetic/comparison/off-by-one mistakes dominate; wholesale variable
#: mix-ups and deleted statements are rarer (and often conceptually wrong).
KIND_WEIGHTS = {
    "int-literal": 3.0,
    "compare-op": 3.0,
    "arith-op": 2.0,
    "aug-op": 2.0,
    "index-shift": 2.0,
    "range-args": 1.5,
    "var-swap": 1.0,
    "drop-guard": 1.0,
    "return-swap": 0.8,
    "slice-bound": 0.5,
}


def _pick_weighted(pool: List[Mutation], rng: random.Random) -> Mutation:
    by_kind: dict = {}
    for mutation in pool:
        by_kind.setdefault(mutation.kind, []).append(mutation)
    kinds = sorted(by_kind)
    weights = [KIND_WEIGHTS.get(kind, 1.0) for kind in kinds]
    kind = rng.choices(kinds, weights=weights, k=1)[0]
    return rng.choice(by_kind[kind])


def mutate(
    module: N.Module,
    rng: random.Random,
    count: int = 1,
    kinds: Optional[Tuple[str, ...]] = None,
) -> Tuple[N.Module, List[str]]:
    """Apply ``count`` randomly chosen mutations in sequence.

    Kinds are drawn by :data:`KIND_WEIGHTS` (then uniformly within the
    kind), so the defect mix resembles a student population rather than
    being dominated by whichever kind has the most syntactic sites.
    """
    descriptions: List[str] = []
    current = module
    for _ in range(count):
        pool = enumerate_mutations(current)
        if kinds is not None:
            pool = [m for m in pool if m.kind in kinds]
        if not pool:
            break
        mutation = _pick_weighted(pool, rng)
        current = mutation.apply()
        descriptions.append(f"{mutation.kind}: {mutation.description}")
    return current, descriptions
