"""repro: automated feedback generation for introductory programming
assignments — a from-scratch reproduction of Singh, Gulwani &
Solar-Lezama (PLDI 2013).

Most users need three names::

    from repro import ProblemSpec, parse_error_model, generate_feedback

    spec = ProblemSpec.from_typed_reference("myproblem", reference_source)
    model = parse_error_model(eml_text)
    report = generate_feedback(student_source, spec, model)
    print(report.render())

The benchmark problems of the paper's Table 1 live in
:mod:`repro.problems`; the experiment drivers that regenerate every table
and figure live in :mod:`repro.harness`.
"""

from repro.core import (
    FeedbackItem,
    FeedbackLevel,
    FeedbackReport,
    ProblemSpec,
    generate_feedback,
    grade_submission,
)
from repro.eml import ErrorModel, parse_error_model

__version__ = "1.0.0"

__all__ = [
    "ProblemSpec",
    "generate_feedback",
    "grade_submission",
    "FeedbackReport",
    "FeedbackItem",
    "FeedbackLevel",
    "ErrorModel",
    "parse_error_model",
    "__version__",
]
