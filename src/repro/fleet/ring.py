"""Consistent hashing: stable key placement across a changing fleet.

The router must send the same submission to the same backend every time
— that is what makes per-node result caches and in-flight dedup work at
fleet scale — while losing or adding a node may only reshuffle the keys
that node owned, never the whole space (a naive ``hash(key) % N``
remaps ~all keys when N changes, turning every node event into a fleet-
wide cache wipe).

Classic consistent hashing: each node is hashed onto a ring at
``vnodes`` pseudo-random points (virtual nodes smooth the per-node load
to within a few percent of even), a key is owned by the first node
point at or clockwise of its own hash, and the walk continuing around
the ring yields the failover order — node loss sends each orphaned key
to its *next* ring neighbor, which is exactly the ≤1/N minimal-movement
property. Hashing is BLAKE2b, deliberately independent of Python's
seeded ``hash()``: every router process, today or after a restart,
computes the identical placement.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

#: Virtual nodes per physical node. 64 keeps max/mean key imbalance
#: comfortably under 2x for small fleets (the test suite pins ≤2x at
#: N ∈ {2, 3, 5}) at negligible ring-build cost.
DEFAULT_VNODES = 64


def _point(data: str) -> int:
    """A 64-bit ring position, stable across processes and restarts."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def routing_key(problem: str, canonical: str) -> str:
    """The ring key of one submission: problem + canonical hash.

    The canonical hash (not the raw source) is deliberate: renamed and
    reformatted resubmissions of one program share a routing key, so
    they land on the backend that already has the verdict cached.
    """
    return f"{problem}:{canonical}"


class HashRing:
    """A consistent hash ring over named nodes.

    Not thread-safe: the router mutates it only from its single event
    loop; build-your-own callers synchronize externally.
    """

    def __init__(
        self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES
    ):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: Dict[str, Tuple[int, ...]] = {}
        #: Sorted (point, node) pairs — the ring itself.
        self._ring: List[Tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def add(self, node: str) -> None:
        """Add one node (idempotent)."""
        if node in self._nodes:
            return
        points = tuple(
            _point(f"{node}#{index}") for index in range(self.vnodes)
        )
        self._nodes[node] = points
        for point in points:
            bisect.insort(self._ring, (point, node))

    def remove(self, node: str) -> None:
        """Remove one node (idempotent)."""
        points = self._nodes.pop(node, None)
        if points is None:
            return
        doomed = set(points)
        self._ring = [
            entry
            for entry in self._ring
            if entry[0] not in doomed or entry[1] != node
        ]

    def node_for(self, key: str) -> Optional[str]:
        """The owning node of ``key``; ``None`` on an empty ring."""
        if not self._ring:
            return None
        index = bisect.bisect_left(self._ring, (_point(key), ""))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def preference(self, key: str) -> List[str]:
        """Every node, in ``key``'s clockwise ring-walk order.

        The first entry is the owner; each subsequent entry is where the
        key lands if everything before it is down or draining — the
        router's failover order, and the minimal-movement guarantee in
        list form (losing the owner promotes exactly the second entry).
        """
        if not self._ring:
            return []
        start = bisect.bisect_left(self._ring, (_point(key), ""))
        seen: List[str] = []
        members = len(self._nodes)
        for offset in range(len(self._ring)):
            node = self._ring[(start + offset) % len(self._ring)][1]
            if node not in seen:
                seen.append(node)
                if len(seen) == members:
                    break
        return seen
