"""Fleet-scale serving: front router, sharded backends, shared store.

One box caps cache-miss grading at ``cpu_count`` concurrent solves; the
paper's deployment target — MOOC-scale grading of thousands of
near-duplicate submissions per assignment (Table 1) — needs a fleet.
This package is the third serving tier, over the batch layer
(:mod:`repro.service`) and the single-node daemon (:mod:`repro.server`):

- :mod:`repro.fleet.ring` — the consistent hash ring that places each
  ``(problem, canonical hash)`` routing key on a backend node, moving
  only ~1/N of the key space when a node joins or dies;
- :mod:`repro.fleet.router` — a thin single-threaded asyncio HTTP front
  that holds thousands of keep-alive student connections, proxies
  ``POST /grade`` to the ring-chosen backend with deadline propagation,
  fails over along the ring under per-backend circuit breakers
  (:mod:`repro.resilience.breaker`), honors node draining, and
  aggregates ``/healthz``, ``/stats`` and ``/metrics`` across the
  fleet (backend expositions parsed and merged via
  :func:`repro.obs.prometheus.parse`);
- :mod:`repro.fleet.launch` — the supervisor behind ``repro-feedback
  serve --fleet N``: forks N backend server processes, waits for their
  warmup self-tests, and fronts them with one router.

Routing by canonical hash means the same submission (however renamed or
reformatted) always lands on the same backend — in-flight dedup and the
per-node result cache keep their single-node hit rates at fleet scale —
while a shared persistent store tier (:mod:`repro.service.store`)
makes every backend's verdicts visible to all of them.
"""

from repro.fleet.launch import BackendProcess, Fleet, free_port, start_fleet
from repro.fleet.ring import HashRing, routing_key
from repro.fleet.router import FleetRouter

__all__ = [
    "BackendProcess",
    "Fleet",
    "FleetRouter",
    "HashRing",
    "free_port",
    "routing_key",
    "start_fleet",
]
