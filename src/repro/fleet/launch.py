"""Fleet supervision: fork N backend servers, front them with a router.

This is the machinery behind ``repro-feedback serve --fleet N``: each
backend is a full ``repro-feedback serve`` *process* (own interpreter,
own GIL, own warm registry — real multi-core scaling, unlike threads),
launched with a stable ``--node-id`` and optionally a shared
``--store`` path, health-polled until its warmup self-test passes, then
placed on the router's hash ring.

The same pieces serve the tests and benchmarks: :func:`start_fleet`
returns a :class:`Fleet` handle exposing the router address, the
backend processes (killable mid-run — the chaos smoke does exactly
that), and one ``stop()`` that drains everything in order: router
first (no new routed work), then SIGINT to each backend (the serve
loop's graceful drain path).
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import IO, List, Optional, Sequence

import repro
from repro.fleet.router import FleetRouter
from repro.server.client import FeedbackClient

#: How long one backend may take to warm and pass its health check.
#: Process-executor backends prime every worker's problem copies; on a
#: loaded CI core that is minutes, not seconds.
DEFAULT_WARMUP_TIMEOUT_S = 600.0


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port, released before return.

    Inherently racy (another process may grab it before our backend
    binds), but the window is milliseconds and backends fail loudly on
    bind — good enough for tests and the fleet launcher.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]


def _src_pythonpath() -> str:
    """A PYTHONPATH that resolves :mod:`repro` in the child, prepended
    to whatever the parent already had."""
    src = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH")
    return src if not existing else src + os.pathsep + existing


class BackendProcess:
    """One ``repro-feedback serve`` child process."""

    def __init__(
        self,
        host: str,
        port: int,
        node_id: str,
        *,
        jobs: int = 2,
        queue: int = 16,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        only: Optional[Sequence[str]] = None,
        store: Optional[str] = None,
        cache: Optional[str] = None,
        engine: Optional[str] = None,
        timeout_s: Optional[float] = None,
        no_prime: bool = False,
        extra_args: Sequence[str] = (),
        log_path: Optional[str] = None,
    ):
        self.host = host
        self.port = port
        self.node_id = node_id
        self.log_path = log_path
        command: List[str] = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--host",
            host,
            "--port",
            str(port),
            "--jobs",
            str(jobs),
            "--queue",
            str(queue),
            "--node-id",
            node_id,
        ]
        if executor:
            command += ["--executor", executor]
        if workers is not None:
            command += ["--workers", str(workers)]
        if only:
            command += ["--only", *only]
        if store:
            command += ["--store", store]
        if cache:
            command += ["--cache", cache]
        if engine:
            command += ["--engine", engine]
        if timeout_s is not None:
            command += ["--timeout", str(timeout_s)]
        if no_prime:
            command.append("--no-prime")
        command += list(extra_args)
        self.command = command
        env = dict(os.environ, PYTHONPATH=_src_pythonpath())
        self._log: Optional[IO[bytes]] = None
        if log_path:
            self._log = open(log_path, "ab")
            out = self._log
        else:
            out = subprocess.DEVNULL
        self.process = subprocess.Popen(
            command, stdout=out, stderr=subprocess.STDOUT, env=env
        )

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def alive(self) -> bool:
        return self.process.poll() is None

    def log_tail(self, lines: int = 40) -> str:
        if not self.log_path or not os.path.exists(self.log_path):
            return "<no backend log captured>"
        with open(self.log_path, "rb") as handle:
            text = handle.read().decode("utf-8", "replace")
        return "\n".join(text.splitlines()[-lines:])

    def wait_healthy(
        self, timeout_s: float = DEFAULT_WARMUP_TIMEOUT_S
    ) -> dict:
        """Poll ``/healthz`` until the backend reports ``ok``.

        Raises ``RuntimeError`` (with the log tail, when captured) if the
        process dies first or the deadline passes — a fleet with a
        half-warmed backend must never start serving.
        """
        deadline = time.monotonic() + timeout_s
        client = FeedbackClient(self.host, self.port, timeout_s=5.0)
        last = "not reachable yet"
        try:
            while time.monotonic() < deadline:
                if not self.alive():
                    raise RuntimeError(
                        f"backend {self.node_id} ({self.address}) exited "
                        f"with {self.process.returncode} during warmup\n"
                        + self.log_tail()
                    )
                try:
                    health = client.healthz()
                except (OSError, ValueError):
                    time.sleep(0.2)
                    continue
                if health.get("status") == "ok":
                    return health
                last = f"status={health.get('status')!r}"
                time.sleep(0.2)
        finally:
            client.close()
        raise RuntimeError(
            f"backend {self.node_id} ({self.address}) not healthy after "
            f"{timeout_s:.0f}s ({last})\n" + self.log_tail()
        )

    def stop(self, grace_s: float = 15.0) -> None:
        """Graceful stop: SIGINT (the serve loop's drain path), escalate
        to terminate/kill only if the grace period passes."""
        if self.alive():
            try:
                self.process.send_signal(signal.SIGINT)
            except (ProcessLookupError, PermissionError):
                pass
            try:
                self.process.wait(timeout=grace_s)
            except subprocess.TimeoutExpired:
                self.process.terminate()
                try:
                    self.process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    self.process.kill()
                    self.process.wait()
        if self._log is not None:
            self._log.close()
            self._log = None

    def kill(self) -> None:
        """Immediate SIGKILL — the chaos path (no drain, no goodbye)."""
        if self.alive():
            self.process.kill()
            self.process.wait()
        if self._log is not None:
            self._log.close()
            self._log = None


class Fleet:
    """A running fleet: one router fronting N backend processes."""

    def __init__(self, router: FleetRouter, backends: List[BackendProcess]):
        self.router = router
        self.backends = backends

    @property
    def host(self) -> str:
        return self.router.host

    @property
    def port(self) -> int:
        return self.router.port

    @property
    def address(self) -> str:
        return f"{self.router.host}:{self.router.port}"

    def client(self, timeout_s: float = 300.0) -> FeedbackClient:
        return FeedbackClient(self.host, self.port, timeout_s=timeout_s)

    def stop(self) -> None:
        self.router.close()
        for backend in self.backends:
            backend.stop()

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_fleet(
    n: int,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    jobs: int = 2,
    queue: int = 16,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    only: Optional[Sequence[str]] = None,
    store: Optional[str] = None,
    engine: Optional[str] = None,
    timeout_s: Optional[float] = None,
    no_prime: bool = False,
    warmup_timeout_s: float = DEFAULT_WARMUP_TIMEOUT_S,
    log_dir: Optional[str] = None,
    breaker_threshold: int = 3,
    breaker_reset_s: float = 5.0,
    extra_args: Sequence[str] = (),
    progress=None,
) -> Fleet:
    """Launch N backends, wait until all are healthy, front with a router.

    Backends are started concurrently (their warmups overlap), then
    health-polled sequentially. Any failure tears down everything
    already started — no half-fleets.
    """
    if n < 1:
        raise ValueError("a fleet needs at least one backend")
    backends: List[BackendProcess] = []
    try:
        for index in range(n):
            node_port = free_port(host)
            node_id = f"node-{index}"
            log_path = (
                str(Path(log_dir) / f"{node_id}.log") if log_dir else None
            )
            backends.append(
                BackendProcess(
                    host,
                    node_port,
                    node_id,
                    jobs=jobs,
                    queue=queue,
                    executor=executor,
                    workers=workers,
                    only=only,
                    store=store,
                    engine=engine,
                    timeout_s=timeout_s,
                    no_prime=no_prime,
                    extra_args=extra_args,
                    log_path=log_path,
                )
            )
        for backend in backends:
            if progress:
                progress(f"waiting for {backend.node_id} ({backend.address})")
            backend.wait_healthy(timeout_s=warmup_timeout_s)
        router = FleetRouter(
            [backend.address for backend in backends],
            host=host,
            port=port,
            breaker_threshold=breaker_threshold,
            breaker_reset_s=breaker_reset_s,
            problems=only,
        )
        router.serve_in_thread()
    except BaseException:
        for backend in backends:
            backend.kill()
        raise
    return Fleet(router, backends)
