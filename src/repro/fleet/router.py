"""The fleet front: a single-threaded asyncio HTTP router.

One router process holds every student connection — thousands of
keep-alive sockets cost an asyncio loop almost nothing — while the CPU
work happens in backend server processes it proxies to. The split is
deliberate: backends run :class:`~repro.server.http.FeedbackHTTPServer`
(a thread per connection, fine for tens of connections from one
router), the router runs no grading at all, so neither tier's
concurrency model leaks into the other.

Routing: ``POST /grade`` bodies are validated with the shared
:mod:`repro.server.codec`, the submission is canonicalized (a
sub-millisecond pure-CPU parse — the one piece of grading knowledge the
router has), and ``(problem, canonical hash)`` is placed on the
:class:`~repro.fleet.ring.HashRing`. The winning backend gets the
request over a pooled keep-alive connection; its response body passes
through byte-for-byte (plus an ``X-Served-By`` header), so a
router-fronted fleet is record-identical to a direct backend by
construction.

Resilience (PR 7 primitives, one tier up):

- **per-backend circuit breakers** — transport failures trip a
  :class:`~repro.resilience.breaker.CircuitBreaker`; an open backend is
  skipped in ring order, so its key range *rebalances* onto ring
  neighbors until a half-open probe succeeds;
- **deadline propagation** — each routed request carries one monotonic
  :class:`~repro.resilience.deadline.Deadline`; when router time
  (failover, slow connects) materially shortens the budget, the
  forwarded ``timeout_s`` shrinks to the remainder (untouched on the
  fast path, so cache keys stay stable);
- **node draining** — ``POST /nodes/<name>/drain`` takes a backend out
  of routing without killing its in-flight work; ``undrain`` reverses.

Aggregation: ``GET /healthz``, ``/stats`` and ``/metrics`` fan out to
every backend concurrently and merge — stats and health keyed by each
backend's stable ``node_id``, metrics parsed from each backend's
exposition text (:func:`repro.obs.prometheus.parse`) and folded into
one fleet-wide scrape together with the router's own
``repro_router_*`` instruments.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.obs import new_request_id
from repro.obs.prometheus import parse as parse_exposition
from repro.obs.prometheus import render as render_exposition
from repro.obs.registry import MetricsRegistry
from repro.problems import all_problems
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import Deadline
from repro.server import codec
from repro.service.canonical import canonicalize
from repro.fleet.ring import DEFAULT_VNODES, HashRing, routing_key

#: Default solver budget assumed when a request carries no ``timeout_s``
#: (matches the serve CLI default; only used for deadline bookkeeping —
#: an untouched body leaves the backend's own default in charge).
DEFAULT_TIMEOUT_S = 45.0

#: Router wear a request may absorb before the forwarded ``timeout_s``
#: is rewritten to the remaining budget. Below this the body passes
#: through byte-identical — rewriting every request would fracture the
#: backend cache keyspace (``timeout_s`` is part of the cache address).
ROUTER_GRACE_S = 0.25

#: Extra read-timeout slack over the propagated deadline: the backend
#: answers a timed-out solve with a *structured* timeout record shortly
#: after the budget, and the router must stay on the line to relay it.
WATCHDOG_GRACE_S = 10.0

#: Per-backend timeout for the aggregation fan-outs (healthz/stats/
#: metrics/problems): a wedged node must not wedge the fleet view.
AGGREGATE_TIMEOUT_S = 5.0

#: Connection-establishment timeout towards a backend.
CONNECT_TIMEOUT_S = 2.0


class BackendError(RuntimeError):
    """The backend could not produce a response (transport-level)."""


class BackendNode:
    """One routed-to backend: address, breaker, connection pool."""

    def __init__(
        self, address: str, threshold: int = 3, reset_s: float = 5.0
    ):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"backend address must be host:port, got {address!r}")
        self.address = address
        self.host = host
        self.port = int(port)
        self.breaker = CircuitBreaker(threshold=threshold, reset_s=reset_s)
        self.draining = False
        #: Idle kept-alive connections to this backend (LIFO — the most
        #: recently used socket is the least likely to have idled out).
        self.idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self.requests = 0
        self.failures = 0
        #: The node_id the backend last reported (aggregation key).
        self.node_id: Optional[str] = None

    def take_connection(self):
        return self.idle.pop() if self.idle else None

    def release_connection(self, reader, writer) -> None:
        self.idle.append((reader, writer))

    def close_connections(self) -> None:
        while self.idle:
            _, writer = self.idle.pop()
            writer.close()

    def info(self) -> dict:
        return {
            "address": self.address,
            "node_id": self.node_id,
            "draining": self.draining,
            "breaker": self.breaker.state,
            "requests": self.requests,
            "failures": self.failures,
            "idle_connections": len(self.idle),
        }


async def _read_http_response(reader: asyncio.StreamReader):
    """(status, headers, body) from one backend HTTP/1.1 response."""
    status_line = await reader.readline()
    if not status_line:
        raise BackendError("backend closed the connection")
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise BackendError(f"malformed status line {status_line!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length")
    if length is None or not length.isdigit():
        raise BackendError("backend response without Content-Length")
    body = await reader.readexactly(int(length))
    return status, headers, body


def _request_bytes(
    method: str, path: str, host: str, body: bytes, headers: Dict[str, str]
) -> bytes:
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}",
        f"Content-Length: {len(body)}",
    ]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


class FleetRouter:
    """Consistent-hash front router over N backend feedback servers."""

    def __init__(
        self,
        backends: Sequence[str],
        host: str = "127.0.0.1",
        port: int = 0,
        default_timeout_s: float = DEFAULT_TIMEOUT_S,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 5.0,
        vnodes: int = DEFAULT_VNODES,
        problems: Optional[Sequence[str]] = None,
    ):
        if not backends:
            raise ValueError("a router needs at least one backend")
        self.host = host
        self.port = port
        self.default_timeout_s = default_timeout_s
        self.nodes: Dict[str, BackendNode] = {}
        for address in backends:
            node = BackendNode(
                address, threshold=breaker_threshold, reset_s=breaker_reset_s
            )
            if node.address in self.nodes:
                raise ValueError(f"duplicate backend {node.address}")
            self.nodes[node.address] = node
        self.ring = HashRing(self.nodes, vnodes=vnodes)
        #: Problem specs for canonicalization — parsed sources only,
        #: never verifier tables: the router stays warm-state-free.
        selected = all_problems()
        if problems is not None:
            wanted = set(problems)
            selected = [p for p in selected if p.name in wanted]
        self._specs = {problem.name: problem.spec for problem in selected}
        #: The router's own instruments, in a *private* registry: in
        #: in-process test fleets the backends share the global registry,
        #: and merging it into an aggregated scrape would double-count.
        self.registry = MetricsRegistry()
        self._requests_total = self.registry.counter(
            "repro_router_requests_total",
            help="Requests handled by the fleet router, by outcome",
            labelnames=("outcome",),
        )
        self._backend_requests = self.registry.counter(
            "repro_router_backend_requests_total",
            help="Requests proxied per backend node",
            labelnames=("backend",),
        )
        self._backend_failures = self.registry.counter(
            "repro_router_backend_failures_total",
            help="Transport failures per backend node",
            labelnames=("backend",),
        )
        self._rebalanced_total = self.registry.counter(
            "repro_router_rebalanced_total",
            help="Gradings served by a ring neighbor because the owning "
            "backend was down, draining or breaker-open",
        )
        self._proxy_seconds = self.registry.histogram(
            "repro_router_proxy_seconds",
            help="Routed /grade wall time as observed by the router",
        )
        self._started = time.monotonic()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    async def _start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_client, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def serve_in_thread(self) -> threading.Thread:
        """Run the router loop on a daemon thread (tests, benchmarks).

        Returns once the listening socket is bound and ``self.port`` is
        the real port.
        """
        started = threading.Event()
        failure: List[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self._start())
            except BaseException as exc:  # bind failure
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                self._teardown(loop)

        self._thread = threading.Thread(
            target=run, name="repro-fleet-router", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            raise failure[0]
        return self._thread

    def run(self) -> None:
        """Run the router in the foreground (the CLI path)."""
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        loop.run_until_complete(self._start())
        try:
            loop.run_forever()
        finally:
            self._teardown(loop)

    def _teardown(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._server is not None:
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
        # Settle open client connections before the loop dies, or their
        # finalizers fire against a closed loop.
        pending = [task for task in asyncio.all_tasks(loop) if not task.done()]
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        for node in self.nodes.values():
            node.close_connections()
        loop.close()

    def close(self) -> None:
        """Stop the router (idempotent; joins the serving thread)."""
        if self._closed:
            return
        self._closed = True
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    # -- HTTP serving -------------------------------------------------------

    async def _serve_client(self, reader, writer) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError:
                    return
                except asyncio.LimitOverrunError:
                    return
                lines = head.decode("latin-1").split("\r\n")
                parts = lines[0].split()
                if len(parts) != 3:
                    return
                method, target, _version = parts
                headers: Dict[str, str] = {}
                for line in lines[1:]:
                    if not line:
                        continue
                    name, _, value = line.partition(":")
                    headers[name.strip().lower()] = value.strip()
                length_text = headers.get("content-length", "0")
                if not length_text.isdigit():
                    return
                length = int(length_text)
                if length > codec.MAX_BODY_BYTES:
                    if length <= codec.DRAIN_CAP_BYTES:
                        await reader.readexactly(length)
                        await self._respond(
                            writer,
                            400,
                            json.dumps(
                                codec.error_body(
                                    "request body must be "
                                    f"1..{codec.MAX_BODY_BYTES} bytes"
                                )
                            ).encode(),
                            close=True,
                        )
                    return
                body = await reader.readexactly(length) if length else b""
                keep_alive = headers.get("connection", "").lower() != "close"
                status, response_headers, payload = await self._dispatch(
                    method, target, headers, body
                )
                await self._respond(
                    writer,
                    status,
                    payload,
                    extra=response_headers,
                    close=not keep_alive,
                )
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop already closed
                pass

    _STATUS_TEXT = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        429: "Too Many Requests",
        502: "Bad Gateway",
        503: "Service Unavailable",
        504: "Gateway Timeout",
    }

    async def _respond(
        self,
        writer,
        status: int,
        payload: bytes,
        extra: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> None:
        reason = self._STATUS_TEXT.get(status, "Response")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(payload)),
            **(extra or {}),
        }
        if close:
            headers["Connection"] = "close"
        head = f"HTTP/1.1 {status} {reason}\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        )
        writer.write(head.encode("latin-1") + b"\r\n" + payload)
        await writer.drain()

    async def _dispatch(
        self, method: str, target: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if method == "POST" and path == "/grade":
            return await self._grade(headers, body)
        if method == "GET" and path == "/healthz":
            return await self._healthz()
        if method == "GET" and path == "/stats":
            return await self._stats()
        if method == "GET" and path == "/metrics":
            return await self._metrics()
        if method == "GET" and path == "/problems":
            return await self._problems()
        if method == "GET" and path == "/nodes":
            return 200, {}, self._json(self._nodes_view())
        if method == "POST" and path.startswith("/nodes/"):
            return self._node_admin(path)
        return (
            404,
            {},
            self._json(codec.error_body(f"unknown path {path!r}")),
        )

    @staticmethod
    def _json(payload: dict) -> bytes:
        return json.dumps(payload).encode("utf-8")

    # -- routing ------------------------------------------------------------

    def _route(self, key: str) -> Tuple[List[BackendNode], int]:
        """Admissible backends in ring order + how many were skipped.

        Draining and breaker-blocked nodes are skipped (an open breaker
        whose reset window elapsed admits itself as the half-open
        probe). The skip count is what the rebalance metric counts when
        a request lands on a non-owner.
        """
        admissible: List[BackendNode] = []
        skipped = 0
        for address in self.ring.preference(key):
            node = self.nodes[address]
            if node.draining or not node.breaker.allow():
                skipped += 1
                continue
            admissible.append(node)
        return admissible, skipped

    async def _grade(
        self, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        started = time.monotonic()
        try:
            request = codec.decode_grade_request(body)
        except ValueError as exc:
            self._requests_total.inc(outcome="bad_request")
            return 400, {}, self._json(codec.error_body(str(exc)))
        problem = request["problem"]
        spec = self._specs.get(problem)
        if spec is None:
            self._requests_total.inc(outcome="unknown_problem")
            return (
                404,
                {},
                self._json(
                    codec.error_body(
                        f"unknown problem {problem!r}",
                        known=sorted(self._specs),
                    )
                ),
            )
        digest = canonicalize(request["source"], spec).digest
        key = routing_key(problem, digest)
        budget = request.get("timeout_s") or self.default_timeout_s
        deadline = Deadline.after(budget)
        request_id = headers.get(codec.REQUEST_ID_HEADER.lower()) or (
            new_request_id()
        )
        forward_headers = {
            "Content-Type": "application/json",
            codec.REQUEST_ID_HEADER: request_id,
        }

        admissible, skipped = self._route(key)
        owner = self.ring.node_for(key)
        last_error: Optional[str] = None
        for node in admissible:
            remaining = deadline.remaining()
            if remaining <= 0.0:
                break
            forward_body = body
            if started and (time.monotonic() - started) > ROUTER_GRACE_S:
                # Router wear (failover, slow connects) materially ate
                # into the budget: propagate the shrunk deadline. The
                # fast path forwards the client's bytes untouched.
                shrunk = dict(request)
                shrunk["timeout_s"] = round(min(budget, remaining), 3)
                forward_body = self._json(shrunk)
            try:
                status, response_headers, payload = await self._proxy(
                    node,
                    "POST",
                    "/grade",
                    forward_body,
                    forward_headers,
                    timeout_s=remaining + WATCHDOG_GRACE_S,
                )
            except (BackendError, OSError, asyncio.TimeoutError) as exc:
                node.failures += 1
                node.breaker.record_failure()
                self._backend_failures.inc(backend=node.address)
                last_error = f"{node.address}: {type(exc).__name__}: {exc}"
                skipped += 1
                continue
            node.requests += 1
            node.breaker.record_success()
            self._backend_requests.inc(backend=node.address)
            rebalanced = node.address != owner
            if rebalanced:
                self._rebalanced_total.inc()
            self._requests_total.inc(
                outcome="rebalanced" if rebalanced else "proxied"
            )
            self._proxy_seconds.observe(time.monotonic() - started)
            out_headers = {codec.SERVED_BY_HEADER: node.address}
            echoed = response_headers.get(codec.REQUEST_ID_HEADER.lower())
            if echoed:
                out_headers[codec.REQUEST_ID_HEADER] = echoed
            retry_after = response_headers.get("retry-after")
            if retry_after:
                out_headers["Retry-After"] = retry_after
            return status, out_headers, payload

        if deadline.remaining() <= 0.0 and admissible:
            self._requests_total.inc(outcome="expired")
            return (
                504,
                {},
                self._json(
                    codec.error_body(
                        "request deadline expired inside the router",
                        request_id=request_id,
                    )
                ),
            )
        self._requests_total.inc(outcome="no_backend")
        return (
            503,
            {"Retry-After": "1"},
            self._json(
                codec.error_body(
                    "no backend available for this key",
                    retry_after_s=1,
                    skipped_backends=skipped,
                    last_error=last_error,
                )
            ),
        )

    # -- backend connections ------------------------------------------------

    async def _proxy(
        self,
        node: BackendNode,
        method: str,
        path: str,
        body: bytes,
        headers: Dict[str, str],
        timeout_s: float,
    ):
        """One request/response exchange with a backend, pooled.

        A pooled connection that dies before yielding a response byte is
        the normal end of a stale keep-alive: the exchange is retried
        once on a fresh socket (same policy as
        :class:`~repro.server.client.FeedbackClient`).
        """
        pooled = node.take_connection()
        if pooled is not None:
            try:
                return await self._exchange(
                    node, pooled, method, path, body, headers, timeout_s
                )
            except (BackendError, OSError, asyncio.IncompleteReadError):
                pass  # stale keep-alive; fall through to a fresh socket
        fresh = await asyncio.wait_for(
            asyncio.open_connection(node.host, node.port),
            timeout=CONNECT_TIMEOUT_S,
        )
        try:
            return await self._exchange(
                node, fresh, method, path, body, headers, timeout_s
            )
        except asyncio.IncompleteReadError as exc:
            raise BackendError("backend closed mid-response") from exc

    async def _exchange(
        self, node, connection, method, path, body, headers, timeout_s
    ):
        reader, writer = connection
        try:
            writer.write(
                _request_bytes(method, path, node.address, body, headers)
            )
            await writer.drain()
            status, response_headers, payload = await asyncio.wait_for(
                _read_http_response(reader), timeout=timeout_s
            )
        except BaseException:
            writer.close()
            raise
        if response_headers.get("connection", "").lower() == "close":
            writer.close()
        else:
            node.release_connection(reader, writer)
        return status, response_headers, payload

    # -- aggregation --------------------------------------------------------

    async def _fanout(self, path: str) -> Dict[str, dict]:
        """``GET path`` on every backend concurrently.

        Returns per-address ``{"ok": bool, ...}`` envelopes; a node that
        cannot answer within :data:`AGGREGATE_TIMEOUT_S` is reported
        unreachable, never awaited longer.
        """

        async def one(node: BackendNode) -> Tuple[str, dict]:
            try:
                status, _, payload = await asyncio.wait_for(
                    self._proxy(node, "GET", path, b"", {}, AGGREGATE_TIMEOUT_S),
                    timeout=AGGREGATE_TIMEOUT_S,
                )
            except (BackendError, OSError, asyncio.TimeoutError) as exc:
                return node.address, {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            if status != 200:
                return node.address, {"ok": False, "status": status}
            try:
                decoded = json.loads(payload)
            except json.JSONDecodeError:
                decoded = payload.decode("utf-8", "replace")
            return node.address, {"ok": True, "payload": decoded}

        results = await asyncio.gather(
            *(one(node) for node in self.nodes.values())
        )
        return dict(results)

    def _node_key(self, node: BackendNode, payload: Optional[dict]) -> str:
        """The aggregation key of one backend: its self-reported stable
        ``node_id`` when reachable (remembered across scrapes), else the
        router-side address."""
        if isinstance(payload, dict) and payload.get("node_id"):
            node.node_id = payload["node_id"]
        return node.node_id or node.address

    async def _healthz(self) -> Tuple[int, Dict[str, str], bytes]:
        answers = await self._fanout("/healthz")
        nodes: Dict[str, dict] = {}
        reachable = 0
        degraded = False
        for address, envelope in answers.items():
            node = self.nodes[address]
            if envelope.get("ok"):
                payload = envelope["payload"]
                reachable += 1
                if payload.get("degraded") or payload.get("status") != "ok":
                    degraded = True
            else:
                payload = {"status": "unreachable", **envelope}
                payload.pop("ok", None)
                degraded = True
            if node.draining:
                degraded = True
                payload = {**payload, "draining": True}
            nodes[self._node_key(node, envelope.get("payload"))] = payload
        breakers_open = [
            node.address
            for node in self.nodes.values()
            if node.breaker.state != "closed"
        ]
        if breakers_open:
            degraded = True
        payload = {
            "status": "degraded" if degraded else "ok",
            "role": "router",
            "degraded": degraded,
            "backends": len(self.nodes),
            "backends_reachable": reachable,
            "backends_draining": sorted(
                node.address for node in self.nodes.values() if node.draining
            ),
            "breakers_open": sorted(breakers_open),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "nodes": nodes,
        }
        return 200, {}, self._json(payload)

    #: Service counters summed into the fleet-wide ``/stats`` totals.
    _TOTAL_KEYS = (
        "requests",
        "graded",
        "cache_hits",
        "dedup_hits",
        "degraded",
        "triaged",
        "rejected",
        "errors",
    )

    async def _stats(self) -> Tuple[int, Dict[str, str], bytes]:
        answers = await self._fanout("/stats")
        nodes: Dict[str, dict] = {}
        totals = {key: 0 for key in self._TOTAL_KEYS}
        for address, envelope in answers.items():
            node = self.nodes[address]
            payload = (
                envelope["payload"]
                if envelope.get("ok")
                else {"unreachable": True}
            )
            nodes[self._node_key(node, envelope.get("payload"))] = payload
            for key in self._TOTAL_KEYS:
                value = payload.get(key)
                if isinstance(value, (int, float)):
                    totals[key] += value
        payload = {
            "role": "router",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "router": self._router_stats(),
            "totals": totals,
            "nodes": nodes,
        }
        return 200, {}, self._json(payload)

    def _router_stats(self) -> dict:
        outcomes = {
            key[0]: value
            for key, value in self._requests_total._values.items()
        }
        return {
            "backends": {
                node.address: node.info() for node in self.nodes.values()
            },
            "ring": {
                "nodes": self.ring.nodes,
                "vnodes": self.ring.vnodes,
            },
            "requests": outcomes,
            "rebalanced": self._rebalanced_total.value(),
            "problems": sorted(self._specs),
        }

    async def _metrics(self) -> Tuple[int, Dict[str, str], bytes]:
        answers = await self._fanout("/metrics")
        merged = MetricsRegistry()
        unreachable = 0
        for envelope in answers.values():
            if not envelope.get("ok"):
                unreachable += 1
                continue
            text = envelope["payload"]
            if isinstance(text, str):
                merged.merge(parse_exposition(text))
        self.registry.gauge(
            "repro_router_backends", help="Backends configured"
        ).set(len(self.nodes))
        self.registry.gauge(
            "repro_router_backends_unreachable",
            help="Backends that failed the last scrape",
        ).set(unreachable)
        self.registry.gauge(
            "repro_router_backends_draining", help="Backends draining"
        ).set(sum(1 for node in self.nodes.values() if node.draining))
        self.registry.gauge(
            "repro_router_breakers_open",
            help="Backend circuit breakers not closed",
        ).set(
            sum(
                1
                for node in self.nodes.values()
                if node.breaker.state != "closed"
            )
        )
        self.registry.gauge(
            "repro_router_uptime_seconds", help="Router uptime"
        ).set(round(time.monotonic() - self._started, 3))
        merged.merge(self.registry.snapshot())
        body = render_exposition(merged.snapshot()).encode("utf-8")
        return 200, {"Content-Type": METRICS_CONTENT_TYPE}, body

    async def _problems(self) -> Tuple[int, Dict[str, str], bytes]:
        """Pass ``GET /problems`` through the first reachable backend
        (every backend warms the same registry slice)."""
        for node in self.nodes.values():
            try:
                status, _, payload = await self._proxy(
                    node, "GET", "/problems", b"", {}, AGGREGATE_TIMEOUT_S
                )
            except (BackendError, OSError, asyncio.TimeoutError):
                continue
            if status == 200:
                return 200, {codec.SERVED_BY_HEADER: node.address}, payload
        return (
            503,
            {},
            self._json(codec.error_body("no backend reachable")),
        )

    # -- node administration ------------------------------------------------

    def _nodes_view(self) -> dict:
        return {
            "backends": {
                node.address: node.info() for node in self.nodes.values()
            },
            "ring": {"nodes": self.ring.nodes, "vnodes": self.ring.vnodes},
        }

    def _node_admin(self, path: str) -> Tuple[int, Dict[str, str], bytes]:
        parts = path.split("/")  # ['', 'nodes', '<name>', '<verb>']
        if len(parts) != 4 or parts[3] not in ("drain", "undrain"):
            return (
                404,
                {},
                self._json(codec.error_body(f"unknown path {path!r}")),
            )
        name, verb = parts[2], parts[3]
        node = self.nodes.get(name)
        if node is None:
            by_id = [n for n in self.nodes.values() if n.node_id == name]
            node = by_id[0] if len(by_id) == 1 else None
        if node is None:
            return (
                404,
                {},
                self._json(
                    codec.error_body(
                        f"unknown backend {name!r}",
                        known=sorted(self.nodes),
                    )
                ),
            )
        node.draining = verb == "drain"
        return 200, {}, self._json(node.info())
