"""Hole-directed execution of M̃PY programs with read-set recording.

Running a candidate means interpreting the M̃PY tree while resolving each
choice node from a hole assignment. The interpreter records every hole it
actually consults: since execution is deterministic, *any* assignment that
agrees on the recorded holes replays the identical run on the same input.
A failing run therefore rules out the whole cube of agreeing assignments —
the blocking-clause generalization the CEGIS synthesis phase feeds back to
the SAT solver.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.mpy import nodes as N
from repro.mpy.interp import DEFAULT_FUEL, Interpreter, RunResult
from repro.tilde.nodes import ChoiceBinOp, ChoiceCompare, ChoiceExpr, ChoiceStmt


class RecordingInterpreter(Interpreter):
    """Interprets an M̃PY module under a hole assignment, recording reads."""

    def __init__(
        self,
        module: N.Module,
        assignment: Optional[Dict[int, int]] = None,
        fuel: int = DEFAULT_FUEL,
    ):
        self.assignment: Dict[int, int] = assignment or {}
        self.touched: Dict[int, int] = {}
        super().__init__(module, fuel=fuel)

    def run(
        self, name: str, args: tuple, assignment: Optional[Dict[int, int]] = None
    ) -> RunResult:
        """Call ``name`` on ``args``; resets the touch record first."""
        if assignment is not None:
            self.assignment = assignment
        self.touched = {}
        return self.call(name, args)

    def cube(self) -> Dict[int, int]:
        """The holes read by the last run, with the branches they took."""
        return dict(self.touched)

    # -- choice-node semantics ----------------------------------------------

    def _branch(self, cid: int) -> int:
        branch = self.assignment.get(cid, 0)
        self.touched[cid] = branch
        return branch

    def eval_ChoiceExpr(self, expr: ChoiceExpr, env):
        return self.eval(expr.choices[self._branch(expr.cid)], env)

    def eval_ChoiceCompare(self, expr: ChoiceCompare, env):
        op = expr.ops[self._branch(expr.cid)]
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        return self.compare_op(op, left, right)

    def eval_ChoiceBinOp(self, expr: ChoiceBinOp, env):
        op = expr.ops[self._branch(expr.cid)]
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        return self.binary_op(op, left, right)

    def exec_ChoiceStmt(self, stmt: ChoiceStmt, env) -> None:
        block = stmt.choices[self._branch(stmt.cid)]
        self.exec_block(block, env)

    def assign_target(self, target, value, env) -> None:
        # Assignment-target corrections (rewriting the LHS of assignments,
        # which the paper lists among its supported transformations).
        if isinstance(target, ChoiceExpr):
            chosen = target.choices[self._branch(target.cid)]
            self.assign_target(chosen, value, env)
            return
        super().assign_target(target, value, env)


class InterpPathRunner:
    """Tree-walker path runner for the explorer (the escape hatch).

    Implements the :class:`~repro.explore.forker.PathForker` runner
    protocol on the interpreter backend so the exploration tables stay
    differential-testable against the compiled substrate. Stateless
    modules reuse one interpreter; stateful modules rebuild per path so
    top-level choice reads land in the cube — including when top-level
    execution itself raises (the instance is kept reachable so its
    partial touched record is the failing path's cube, mirroring the
    compiled backend's lazy-error behavior).
    """

    def __init__(self, module: N.Module, function: str, fuel: int):
        self.module = module
        self.function = function
        self.fuel = fuel
        self.stateful = any(
            not isinstance(stmt, N.FuncDef) for stmt in module.body
        )
        self._interp: Optional[RecordingInterpreter] = None

    def run_recorded(
        self, args: tuple, assignment: Dict[int, int]
    ) -> RunResult:
        if self.stateful or self._interp is None:
            # Two-phase construction: __init__ executes the module top
            # level and can raise; holding the instance first keeps the
            # partial touch record readable through cube().
            interp = RecordingInterpreter.__new__(RecordingInterpreter)
            self._interp = interp
            interp.__init__(self.module, dict(assignment), fuel=self.fuel)
            return interp.call(self.function, args)
        return self._interp.run(
            self.function, args, assignment=dict(assignment)
        )

    def cube(self) -> Dict[int, int]:
        assert self._interp is not None
        return self._interp.cube()


def run_candidate(
    module: N.Module,
    function: str,
    args: tuple,
    assignment: Dict[int, int],
    fuel: int = DEFAULT_FUEL,
    backend: Optional[str] = None,
) -> Tuple[RunResult, Dict[int, int]]:
    """One-shot convenience wrapper; returns (result, touched cube).

    ``backend`` picks the execution substrate (process default when
    ``None``). Repeated-candidate call sites should hold a
    ``CompiledProgram`` (or a ``RecordingInterpreter``) instead of paying
    the per-call setup here.
    """
    from repro.compile import COMPILED, compile_program, resolve_backend

    if resolve_backend(backend) == COMPILED:
        program = compile_program(module, fuel=fuel)
        result = program.run(function, args, assignment=assignment)
        return result, program.cube()
    interp = RecordingInterpreter(module, assignment, fuel=fuel)
    result = interp.run(function, args)
    return result, interp.cube()
