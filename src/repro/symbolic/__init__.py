"""Symbolic execution of M̃PY candidate spaces.

The SKETCH translation of the paper turns expression choices into functions
over integer holes (Section 2.3). Our equivalent is hole-directed concrete
execution: :class:`~repro.symbolic.recorder.RecordingInterpreter` runs the
M̃PY program under a concrete hole assignment while recording exactly which
holes the run *read* — the "cube" that generalizes a failing run into a SAT
blocking clause covering every assignment that agrees on those holes.
"""

from repro.symbolic.recorder import RecordingInterpreter, run_candidate

__all__ = ["RecordingInterpreter", "run_candidate"]
