"""Explorer selection: table-based blocking on, or per-candidate sweeps.

Mirrors :mod:`repro.compile.backend`: an explicit ``explorer=`` argument
at a call site wins, else a process-wide default set via
:func:`set_default_explorer` (the CLI's ``--explorer`` flag), else the
``REPRO_EXPLORER`` environment variable, else **on**. The off state is
the ablation: engines fall back to one generalized cube per failing
candidate, the per-candidate sweep the exploration tables replace.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Union

ENV_VAR = "REPRO_EXPLORER"

_ON = ("on", "1", "true", "yes")
_OFF = ("off", "0", "false", "no")

_default: Optional[bool] = None


def _validate(value: Union[bool, str]) -> bool:
    if isinstance(value, bool):
        return value
    lowered = str(value).strip().lower()
    if lowered in _ON:
        return True
    if lowered in _OFF:
        return False
    raise ValueError(
        f"unknown explorer setting {value!r}; expected 'on' or 'off'"
    )


def default_explorer() -> bool:
    """The process-wide setting: explicit default, env var, or on."""
    if _default is not None:
        return _default
    env = os.environ.get(ENV_VAR, "").strip()
    if env:
        return _validate(env)
    return True


def set_default_explorer(value: Union[bool, str, None]) -> None:
    """Set (or with ``None``, clear) the process-wide explorer default."""
    global _default
    _default = _validate(value) if value is not None else None


def resolve_explorer(value: Union[bool, str, None]) -> bool:
    """An explicit choice if given, else the process default."""
    return _validate(value) if value is not None else default_explorer()


@contextmanager
def using_explorer(value: Union[bool, str, None]) -> Iterator[bool]:
    """Temporarily pin the process default (``None`` = leave as is)."""
    global _default
    saved = _default
    if value is not None:
        _default = _validate(value)
    try:
        yield default_explorer()
    finally:
        _default = saved
