"""DFS path forker: enumerate every reachable execution path of one input.

Running an M̃PY program on one input under a partial assignment reads a
*sequence* of choice points: execution is deterministic, so the first
untouched choice it consults — and every one after — is a function of the
branches taken before it. The forker exploits this with **replay-based
branching** (the concrete substrate's stand-in for SKETCH exploring all
candidates symbolically):

1. run once with every undecided choice resolving to its default branch;
2. read the run's touched-hole record *in first-read order* (the
   compiled backend and the recording interpreter both guarantee dict
   insertion order = first-read order) and append each fresh choice
   point to the decision stack at branch 0;
3. backtrack: advance the deepest decision with an unexplored sibling,
   drop the decisions below it, and replay — the decision prefix above
   it is shared verbatim, so only reachable branch combinations are ever
   executed (holes not read on a path never multiply into it).

The result is an :class:`~repro.explore.table.ExplorationTable` whose
leaves' cubes cover the whole candidate space for that input (restricted
to ``pinned`` / ``budget`` when given) while each distinct execution path
runs exactly once — O(distinct paths), not O(candidates).

Forking can be restricted three ways, composably:

- ``pinned`` — holes held at fixed branches (explore one region);
- ``fork`` — a predicate choosing which holes fan out (e.g. only free
  rule-RHS holes, the neighborhood ``CEGISMIN`` blocks per failure);
- ``budget`` — a correction-cost bound: non-default branches of costly
  holes consume budget and unaffordable siblings are pruned, matching
  the cost levels CEGISMIN searches under.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.explore.outcomes import outcome_of
from repro.explore.table import ExplorationTable, Leaf


class ExplorationLimit(RuntimeError):
    """Raised when a table would exceed the caller's ``max_leaves``."""

    def __init__(self, input_args: tuple, leaves: int):
        super().__init__(
            f"exploration of input {input_args!r} exceeded {leaves} leaves"
        )
        #: The explored input (``args`` would clobber BaseException.args).
        self.input_args = input_args
        self.leaves = leaves


def domains_from_registry(
    registry,
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """(arity, cost-per-correction) maps for a
    :class:`~repro.tilde.nodes.HoleRegistry` — free rule-RHS holes cost 0."""
    arity: Dict[int, int] = {}
    cost: Dict[int, int] = {}
    for info in registry.holes():
        arity[info.cid] = info.arity
        cost[info.cid] = 0 if info.free else 1
    return arity, cost


class PathForker:
    """Explores the candidate space of a program one input at a time.

    ``runner`` is any path runner exposing the two-method protocol

    - ``run_recorded(args, assignment) -> RunResult`` — execute under the
      assignment with a touched-hole record that covers the *whole* run
      (including top-level re-execution for stateful modules), raising
      :class:`~repro.mpy.errors.MPYRuntimeError` on dynamic errors;
    - ``cube() -> dict`` — the record of the last run, insertion-ordered
      by first read.

    Both execution backends provide one: the compiled program itself
    (:meth:`~repro.compile.compiler.CompiledProgram.run_recorded`) and the
    tree-walker fallback (:class:`~repro.symbolic.recorder.InterpPathRunner`).
    """

    def __init__(
        self,
        runner,
        arity: Dict[int, int],
        cost: Optional[Dict[int, int]] = None,
        compare_stdout: bool = False,
    ):
        self.runner = runner
        self.arity = arity
        self.cost = cost if cost is not None else {}
        self.compare_stdout = compare_stdout

    def explore(
        self,
        args: tuple,
        pinned: Optional[Dict[int, int]] = None,
        budget: Optional[int] = None,
        fork: Optional[Callable[[int], bool]] = None,
        deadline: Optional[float] = None,
        max_leaves: Optional[int] = None,
    ) -> ExplorationTable:
        """The complete table of (cube → outcome) leaves for ``args``.

        Raises TimeoutError past ``deadline`` (time.monotonic) and
        :class:`ExplorationLimit` past ``max_leaves``.
        """
        pinned = dict(pinned or {})
        runner = self.runner
        arity = self.arity
        leaves: List[Leaf] = []
        #: Decision stack: [cid, branch] in first-read order; replaying it
        #: reproduces the shared path prefix of the next leaf.
        stack: List[List[int]] = []
        assignment = dict(pinned)
        runs = 0
        while True:
            runs += 1
            if (
                deadline is not None
                and runs % 64 == 0
                and time.monotonic() > deadline
            ):
                raise TimeoutError("exploration deadline exceeded")
            outcome = outcome_of(
                lambda: runner.run_recorded(args, assignment),
                self.compare_stdout,
            )
            touched = runner.cube()
            for cid in touched:
                # A fresh choice point: not pinned, not yet decided, and
                # in the fork set. It resolved to branch 0 on this run.
                if cid in assignment or cid not in arity:
                    continue
                if fork is not None and not fork(cid):
                    continue
                stack.append([cid, 0])
                assignment[cid] = 0
            leaves.append(Leaf(cube=touched, outcome=outcome))
            if max_leaves is not None and len(leaves) > max_leaves:
                raise ExplorationLimit(args, max_leaves)
            if not self._advance(stack, budget):
                break
            assignment = dict(pinned)
            for cid, branch in stack:
                assignment[cid] = branch
        return ExplorationTable(
            args=args, leaves=leaves, runs=runs, budget=budget, pinned=pinned
        )

    def _advance(self, stack: List[List[int]], budget: Optional[int]) -> bool:
        """Move to the next unexplored path: advance the deepest decision
        with an affordable sibling, dropping the decisions below it."""
        cost = self.cost
        spent = 0
        if budget is not None:
            spent = sum(cost.get(cid, 1) for cid, branch in stack if branch)
        while stack:
            cid, branch = stack[-1]
            step = cost.get(cid, 1) if budget is not None else 0
            base = spent - (step if branch else 0)
            if branch + 1 < self.arity[cid] and (
                budget is None or base + step <= budget
            ):
                stack[-1][1] = branch + 1
                return True
            stack.pop()
            spent = base
        return False
