"""Exploration tables: (touched-hole cube → outcome) maps for one input.

A :class:`Leaf` is one complete execution path of an M̃PY program on one
input: the *cube* of holes the run actually read (with the branches they
took, in first-read order) and the observable :data:`~repro.explore.outcomes.Outcome`.
Execution is deterministic, so every full hole assignment that agrees
with a leaf's cube replays the identical run — the leaf speaks for the
whole cube of agreeing assignments.

An :class:`ExplorationTable` is the set of leaves produced by the path
forker for one input. When forking was unrestricted, the cubes partition
the entire candidate space: :meth:`ExplorationTable.lookup` classifies any
assignment by walking a trie keyed on first-read order, without running
the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.explore.outcomes import Outcome, outcomes_match


@dataclass
class Leaf:
    """One execution path: the holes it read and what it produced.

    ``cube`` preserves first-read order (dict insertion order), which is
    what lets the table rebuild the choice-point trie without re-running
    anything.
    """

    cube: Dict[int, int]
    outcome: Outcome


class _Node:
    """Internal trie node: the next hole read, children by branch."""

    __slots__ = ("cid", "children")

    def __init__(self, cid: int):
        self.cid = cid
        self.children: Dict[int, object] = {}


@dataclass
class ExplorationTable:
    """All reachable execution paths of one input, as cube → outcome leaves.

    ``budget`` records the correction-cost bound the forker explored under
    (``None`` = unbounded): lookups are exact for every assignment whose
    cost fits the budget, and return ``None`` beyond it. ``pinned`` records
    the partial assignment the exploration was restricted to.
    """

    args: tuple
    leaves: List[Leaf]
    runs: int = 0
    budget: Optional[int] = None
    pinned: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        self._trie: Optional[object] = None

    def __len__(self) -> int:
        return len(self.leaves)

    # -- classification ------------------------------------------------------

    def _build_trie(self):
        """Rebuild the choice-point tree from the leaves' read orders."""
        root: Optional[object] = None
        for leaf in self.leaves:
            path = list(leaf.cube.items())
            if not path:
                # A run that read no holes: the table is this single leaf.
                return leaf
            if root is None:
                root = _Node(path[0][0])
            node = root
            for index, (cid, branch) in enumerate(path):
                last = index == len(path) - 1
                if last:
                    node.children[branch] = leaf
                    break
                child = node.children.get(branch)
                if child is None:
                    child = _Node(path[index + 1][0])
                    node.children[branch] = child
                node = child
        return root

    def leaf_for(self, assignment: Dict[int, int]) -> Optional[Leaf]:
        """The leaf whose path ``assignment`` replays, or None if the
        exploration (budget/pinning) did not cover that region."""
        if self._trie is None:
            self._trie = self._build_trie()
        node = self._trie
        while isinstance(node, _Node):
            node = node.children.get(assignment.get(node.cid, 0))
            if node is None:
                return None
        return node

    def lookup(self, assignment: Dict[int, int]) -> Optional[Outcome]:
        """The outcome ``assignment`` produces on this input — a pure table
        walk, no execution."""
        leaf = self.leaf_for(assignment)
        return None if leaf is None else leaf.outcome

    def split(
        self, expected: Outcome
    ) -> Tuple[List[Leaf], List[Leaf]]:
        """Partition leaves into (matching, failing) against ``expected``."""
        matching: List[Leaf] = []
        failing: List[Leaf] = []
        for leaf in self.leaves:
            if outcomes_match(expected, leaf.outcome):
                matching.append(leaf)
            else:
                failing.append(leaf)
        return matching, failing
