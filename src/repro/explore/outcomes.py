"""Observable outcomes of (M̃)PY runs.

An *outcome* is ``("ok", value, stdout)`` or ``("error",)``: student code
that raises (bad index, type confusion, non-termination by fuel) is
observably different from code that returns. The format is shared by the
bounded verifier (:mod:`repro.engines.verify`, which re-exports these
names) and the exploration tables (:mod:`repro.explore.table`), so a
table leaf can be compared against a reference outcome directly.

This module sits below the engine layer on purpose: the explorer needs
outcomes without depending on verification, and the verifier needs them
without depending on exploration.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.mpy.errors import MPYRuntimeError
from repro.mpy.interp import RunResult

Outcome = Tuple  # ("ok", value, stdout) | ("error",)

OK = "ok"
ERROR = "error"


def outcome_of(run: Callable[[], RunResult], compare_stdout: bool) -> Outcome:
    try:
        result = run()
    except MPYRuntimeError:
        return (ERROR,)
    stdout = result.stdout if compare_stdout else ()
    return (OK, result.value, stdout)


def typed_equal(a, b) -> bool:
    """Deep equality that distinguishes types Python's ``==`` conflates.

    ``True == 1`` and ``[True] == [1]`` hold in Python, but under the
    paper's MultiType flags BOOL and INTEGER are different dynamic types, so
    returning one where the reference returns the other must count as a
    mismatch.
    """
    if type(a) is not type(b):
        return False
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(
            typed_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, dict):
        if set(a.keys()) != set(b.keys()):
            return False
        return all(typed_equal(a[k], b[k]) for k in a)
    return a == b


def outcomes_match(expected: Outcome, actual: Outcome) -> bool:
    if expected[0] != actual[0]:
        return False
    if expected[0] == ERROR:
        return True
    return typed_equal(expected[1], actual[1]) and expected[2] == actual[2]
