"""Path-forking candidate-space exploration.

Instead of sweeping candidates one at a time, the explorer runs a
compiled M̃PY program on one *input*, forks at every untouched choice
point it reads, and yields the complete table of (touched-hole cube →
outcome) leaves — the concrete substrate's answer to SKETCH ruling out
whole regions of the hole space per counterexample. Engines consume the
tables through :class:`~repro.engines.base.CandidateSpace`.

- :mod:`repro.explore.forker` — the replay-based DFS fork loop;
- :mod:`repro.explore.table` — leaves, tables, trie lookup;
- :mod:`repro.explore.outcomes` — the shared observable-outcome format;
- :mod:`repro.explore.config` — the ``--explorer on|off`` ablation knob.
"""

from repro.explore.config import (
    default_explorer,
    resolve_explorer,
    set_default_explorer,
    using_explorer,
)
from repro.explore.forker import (
    ExplorationLimit,
    PathForker,
    domains_from_registry,
)
from repro.explore.outcomes import (
    ERROR,
    OK,
    Outcome,
    outcome_of,
    outcomes_match,
    typed_equal,
)
from repro.explore.table import ExplorationTable, Leaf

__all__ = [
    "ERROR",
    "OK",
    "ExplorationLimit",
    "ExplorationTable",
    "Leaf",
    "Outcome",
    "PathForker",
    "default_explorer",
    "domains_from_registry",
    "outcome_of",
    "outcomes_match",
    "resolve_explorer",
    "set_default_explorer",
    "typed_equal",
    "using_explorer",
]
