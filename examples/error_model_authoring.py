"""Error-model authoring: grow a model rule by rule (paper Fig. 14(b)).

The paper's workflow for instructors: start with an empty model, look at a
few incorrect submissions the tool cannot fix yet, add one rule capturing
that mistake class, and watch the corrected count climb — "only a few tens
of incorrect solutions can provide enough information to create an error
model that can automatically provide feedback for thousands".

This example replays that loop on a synthetic iterPower corpus, printing
the fix count after each added rule and the feedback unlocked by it.

Run:  python examples/error_model_authoring.py
"""

from repro.core import generate_feedback
from repro.eml import parse_error_model
from repro.engines import BoundedVerifier
from repro.problems import get_problem
from repro.studentgen import generate_corpus

#: Rules added one at a time, each targeting one observed mistake class.
RULE_STAGES = [
    (
        "INITR — wrong accumulator initialization (result = 0)",
        "rule INITR: v = n -> v = {n + 1, n - 1, 0, 1}",
    ),
    (
        "AUGM — wrong accumulation operator (result = result + base)",
        "rule AUGM: v = v * a -> v = {v + a, v * v, v ** a}",
    ),
    (
        "RANR1 — wrong iteration count (range(exp - 1))",
        "rule RANR1: range(a0) -> range({a0 + 1, a0 - 1})",
    ),
    (
        "COMPR — wrong loop condition",
        "rule COMPR: anycmp(a0, a1) -> "
        "{cmpset({a0', ?a0}, {a1', 0, 1, ?a1}), True, False}",
    ),
]


def main() -> None:
    problem = get_problem("iterPower-6.00x")
    corpus = generate_corpus(problem, incorrect_count=12, seed=7)
    verifier = BoundedVerifier(problem.spec)
    print(
        f"authoring an error model for {problem.name} against "
        f"{len(corpus.incorrect)} incorrect submissions\n"
    )

    rules_so_far: list = []
    previously_fixed: set = set()
    for stage, (label, rule_text) in enumerate(RULE_STAGES, start=1):
        rules_so_far.append(rule_text)
        model = parse_error_model("\n".join(rules_so_far), name=f"E{stage}")
        fixed_now = set()
        for index, submission in enumerate(corpus.incorrect):
            report = generate_feedback(
                submission.source,
                problem.spec,
                model,
                timeout_s=20,
                verifier=verifier,
            )
            if report.fixed:
                fixed_now.add(index)
        newly = fixed_now - previously_fixed
        print(f"E{stage}: + {label}")
        print(
            f"    fixes {len(fixed_now)}/{len(corpus.incorrect)} "
            f"({len(newly)} newly unlocked)"
        )
        previously_fixed = fixed_now
    print(
        "\nEach added rule monotonically grows the corrected set — the "
        "repetitive-mistakes effect of paper Fig. 14(b)."
    )


if __name__ == "__main__":
    main()
