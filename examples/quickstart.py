"""Quickstart: generate feedback for one incorrect submission.

Run:  python examples/quickstart.py
"""

from repro.core import ProblemSpec, generate_feedback
from repro.eml import parse_error_model
from repro.mpy.values import Bounds

# 1. The instructor writes a reference implementation. Argument types use
#    the paper's name-suffix convention: `poly_list_int` is a list of ints
#    named `poly`.
REFERENCE = """\
def computeDeriv_list_int(poly_list_int):
    result = []
    for i in range(len(poly_list_int)):
        result += [i * poly_list_int[i]]
    if len(poly_list_int) == 1:
        return result
    return result[1:]
"""

spec = ProblemSpec.from_typed_reference(
    "computeDeriv",
    REFERENCE,
    bounds=Bounds(int_bits=3, max_list_len=3),
    description="derivative of a polynomial given as a coefficient list",
)

# 2. The instructor writes an error model: rewrite rules describing the
#    corrections students typically need (EML, paper Section 3).
MODEL = parse_error_model(
    """
model computeDeriv-quickstart

rule RETR: return a -> return [0]
  msg: "In the return statement {orig} in line {line}, return [0] instead."
rule RANR: range(a0, a1) -> range({0, 1, a0 + 1, a0 - 1}, {a1 + 1, a1 - 1})
  msg: "In the expression {orig} in line {line}, change it to {new}."
rule COMPR: anycmp(a0, a1) -> {cmpset({a0', ?a0}, {a1', 0, 1, ?a1}), True, False}
  msg: "In the comparison {orig} in line {line}, change it to {new}."
"""
)

# 3. A student submits an incorrect attempt (paper Fig. 2(a), from the
#    6.00x discussion forum).
SUBMISSION = """\
def computeDeriv(poly):
    deriv = []
    zero = 0
    if (len(poly) == 1):
        return deriv
    for e in range(0,len(poly)):
        if (poly[e] == 0):
            zero += 1
        else:
            deriv.append(poly[e]*e)
    return deriv
"""


def main() -> None:
    report = generate_feedback(SUBMISSION, spec, MODEL, timeout_s=60)

    print("== student submission ==")
    print(SUBMISSION)
    print("== generated feedback ==")
    print(report.render())
    print()
    print(
        f"[status={report.status}, corrections={report.cost}, "
        f"provably minimal={report.minimal}, {report.wall_time:.2f}s]"
    )
    if report.fixed_source:
        print("\n== corrected program (verified equivalent on all bounded inputs) ==")
        print(report.fixed_source)


if __name__ == "__main__":
    main()
