"""Classroom grading: push a whole submission batch through the pipeline.

Simulates the 6.00x grading scenario the paper motivates: a stack of
submissions for one problem set arrives; the tool classifies each
(syntax error / correct / fixable with feedback / needs human attention)
and produces the per-problem statistics of the paper's Table 1.

Run:  python examples/classroom_grading.py [problem-name] [corpus-size]
"""

import sys
import time
from collections import Counter

from repro.core import generate_feedback, grade_submission
from repro.problems import get_problem
from repro.studentgen import generate_corpus


def grade_batch(problem_name: str = "compDeriv-6.00x", corpus_size: int = 10):
    problem = get_problem(problem_name)
    spec, model = problem.spec, problem.model

    # A synthetic batch standing in for real student submissions: incorrect
    # attempts of several flavors, correct ones, and syntax errors.
    corpus = generate_corpus(
        problem, incorrect_count=corpus_size, correct_count=3, syntax_count=2
    )
    batch = (
        [s.source for s in corpus.syntax_errors]
        + [s.source for s in corpus.correct]
        + [s.source for s in corpus.incorrect]
    )
    print(f"grading {len(batch)} submissions for {problem.name}\n")

    buckets: Counter = Counter()
    feedback_times = []
    for index, source in enumerate(batch):
        verdict = grade_submission(source, spec)
        if verdict != "incorrect":
            buckets[verdict] += 1
            print(f"  #{index:02d} {verdict}")
            continue
        started = time.monotonic()
        report = generate_feedback(source, spec, model, timeout_s=30)
        feedback_times.append(time.monotonic() - started)
        buckets[report.status] += 1
        if report.fixed:
            headline = report.items[0].render() if report.items else ""
            print(
                f"  #{index:02d} fixable with {report.cost} correction(s): "
                f"{headline[:70]}"
            )
        else:
            print(f"  #{index:02d} {report.status} (needs human attention)")

    print("\n== batch summary ==")
    for status, count in sorted(buckets.items()):
        print(f"  {status:16s} {count}")
    incorrect_total = sum(
        buckets[s] for s in ("fixed", "no_fix", "timeout")
    )
    if incorrect_total:
        rate = 100.0 * buckets["fixed"] / incorrect_total
        print(
            f"\nfeedback generated for {rate:.0f}% of incorrect submissions"
            f" (paper Table 1 overall: 64%)"
        )
    if feedback_times:
        print(
            f"average feedback time {sum(feedback_times)/len(feedback_times):.2f}s"
            f" (paper: ~10s on a 2013 Xeon)"
        )


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "compDeriv-6.00x"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    grade_batch(name, size)
