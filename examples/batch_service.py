"""Batch grading service: classroom-scale grading with cache and resume.

The paper's evaluation graded thousands of attempts per problem, many of
them near-duplicates (260 of 541 evalPoly attempts shared one conceptual
error). This example shows the service layer built for exactly that
traffic shape:

1. a synthetic "submission inbox" is written to a temp directory;
2. the batch runner grades it with 2 worker processes, deduplicating
   α-renamed copies via the canonicalizer and persisting JSONL results;
3. the batch is interrupted halfway and resumed — already-graded
   submissions are skipped;
4. the same corpus is graded again against a warm cache — nothing is
   solved twice.

Run:  python examples/batch_service.py [problem-name] [count]
"""

import sys
import tempfile
from pathlib import Path

from repro.problems import get_problem
from repro.service import BatchItem, BatchRunner, JobStore, ResultCache
from repro.studentgen import generate_corpus


def main(problem_name: str = "iterPower-6.00x", count: int = 8) -> None:
    problem = get_problem(problem_name)
    corpus = generate_corpus(problem, incorrect_count=count, seed=3)

    inbox = Path(tempfile.mkdtemp(prefix="repro-inbox-"))
    sources = [s.source for s in corpus.incorrect]
    # Every third submission is a duplicate of the first — the "same
    # conceptual error, many students" population.
    for index in range(len(sources)):
        if index % 3 == 2:
            sources[index] = sources[0]
    for index, source in enumerate(sources):
        (inbox / f"student{index:02d}.py").write_text(source)
    print(f"inbox: {len(sources)} submissions for {problem.name} in {inbox}")

    items = [
        BatchItem(sid=path.name, source=path.read_text())
        for path in sorted(inbox.glob("*.py"))
    ]
    store = JobStore(inbox / "results.jsonl")
    cache = ResultCache(inbox / "cache.json")

    def progress(done, total, result):
        how = "cached" if result.cached else f"{result.report.wall_time:.2f}s"
        print(f"  [{done}/{total}] {result.sid}: {result.report.status} ({how})")

    print("\n-- first batch (2 worker processes) --")
    runner = BatchRunner(
        problem, jobs=2, timeout_s=20, cache=cache, store=store,
        progress=progress,
    )
    runner.run(items)
    s = runner.stats
    print(
        f"graded {s.graded} distinct submissions; {s.dedup_hits} duplicates "
        f"served from their representative; {s.wall_time:.2f}s"
    )

    print("\n-- resumed batch (nothing left to grade) --")
    resumed = BatchRunner(
        problem, jobs=2, timeout_s=20, cache=cache, store=store, resume=True,
    )
    resumed.run(items)
    print(
        f"resumed {resumed.stats.resumed}/{resumed.stats.total} from "
        f"{store.path.name}; graded {resumed.stats.graded}"
    )

    print("\n-- same corpus, fresh runner, warm cache --")
    warm = BatchRunner(problem, jobs=2, timeout_s=20, cache=cache)
    warm.run(items)
    print(
        f"cache hits {warm.stats.cache_hits}/{warm.stats.total}; "
        f"graded {warm.stats.graded}; {warm.stats.wall_time:.2f}s"
    )


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "iterPower-6.00x"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(name, count)
