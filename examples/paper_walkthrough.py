"""Paper walkthrough: the three Fig. 2 submissions, end to end.

Reproduces the paper's headline demonstration: three *algorithmically
different* incorrect computeDeriv submissions, one reference solution, one
error model — and tailored minimal corrections for each.

Run:  python examples/paper_walkthrough.py
"""

from repro.core import generate_feedback
from repro.core.feedback import FeedbackLevel
from repro.problems import get_problem

PROBLEM = get_problem("compDeriv-6.00x")

SUBMISSIONS = {
    "Fig. 2(a) — forum submission with three bugs": """\
def computeDeriv(poly):
    deriv = []
    zero = 0
    if (len(poly) == 1):
        return deriv
    for e in range(0,len(poly)):
        if (poly[e] == 0):
            zero += 1
        else:
            deriv.append(poly[e]*e)
    return deriv
""",
    "Fig. 2(b) — pop-based solution missing the base case": """\
def computeDeriv(poly):
    idx = 1
    deriv = list([])
    plen = len(poly)
    while idx < plen:
        coeff = poly.pop(1)
        deriv += [coeff * idx]
        idx = idx + 1
    if len(poly) < 2:
        return deriv
""",
    "Fig. 2(c) — backwards fill with two off-by-ones": """\
def computeDeriv(poly):
    length = int(len(poly)-1)
    i = length
    deriv = range(1,length)
    if len(poly) == 1:
        deriv = [0]
    else:
        while i >= 0:
            new = poly[i] * i
            i -= 1
            deriv[i] = new
    return deriv
""",
}


def main() -> None:
    print(f"problem: {PROBLEM.name}")
    print(f"error model: {len(PROBLEM.model)} rules "
          f"({', '.join(r.name for r in PROBLEM.model)})")
    print(f"bounded input space: {PROBLEM.spec.input_space_size()} inputs\n")

    for title, source in SUBMISSIONS.items():
        print("=" * 72)
        print(title)
        print("-" * 72)
        print(source)
        report = generate_feedback(
            source, PROBLEM.spec, PROBLEM.model, timeout_s=120
        )
        print(report.render())
        print(
            f"\n[{report.status}; {report.cost} correction(s); minimal="
            f"{report.minimal}; {report.wall_time:.1f}s]"
        )
        # The same item can be rendered at lower feedback levels when the
        # instructor wants to reveal less (Section 2's feedback-level
        # parameter):
        if report.items:
            print("\nat lower feedback levels the first item reads:")
            for level in (
                FeedbackLevel.LOCATION,
                FeedbackLevel.EXPRESSION,
                FeedbackLevel.FULL,
            ):
                print(f"  L{int(level)}: {report.items[0].render(level)}")
        print()


if __name__ == "__main__":
    main()
