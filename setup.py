from setuptools import find_packages, setup

setup(
    name="repro-feedback",
    version="0.2.0",
    description=(
        "Reproduction of 'Automated Feedback Generation for Introductory "
        "Programming Assignments' (Singh, Gulwani & Solar-Lezama, PLDI "
        "2013), with a classroom-scale batch grading service"
    ),
    python_requires=">=3.8",
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.problems": ["emldata/*.eml"]},
    include_package_data=True,
    entry_points={
        "console_scripts": ["repro-feedback=repro.cli:main"],
    },
)
