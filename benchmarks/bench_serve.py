"""Serving benchmark: what a warm persistent process buys per request.

Three workloads over the same problem (evalPoly, a Table 1 row whose
bounded space is large enough that per-invocation warmup is a real cost) and the same synthetic student submissions:

- **cold** — one full CLI invocation per submission (``python -m
  repro.cli feedback``): interpreter start, package import, registry
  construction, model parse, bounded-space enumeration, then the solve.
  This is what per-request grading costs without a daemon.
- **warm miss** — the same submissions POSTed to a running server that
  has never seen them: every request pays the real solve, but all the
  per-problem work was done once at startup.
- **zipf resubmission** — requests drawn from the submission pool under
  a zipf(1.2) rank distribution, the classic shape of classroom traffic
  (the one conceptual error half the class shares dominates): measures
  sustained req/s and the cache-hit ratio the dedup layer converts that
  skew into.
- **cache-miss multi-core scaling** — the same distinct-submission
  stream pushed through ``--executor thread`` and ``--executor
  process`` at ``N = min(4, cores)`` concurrency. The engine loop is
  pure-Python CPU work, so the thread executor is GIL-bound to ~one
  core regardless of ``--jobs``; the process executor's preforked
  workers are where extra cores actually become throughput.
- **fleet tier** — what the routing layer costs and buys: added p50 on
  a warm cache hit through an in-process router (target ≤ 1ms), and the
  same miss stream against one backend *process* vs a 2-backend
  subprocess fleet behind the router (≥ 1.8x on a ≥4-core runner).

A session finalizer writes ``BENCH_serve.json`` at the repo root and the
final tests enforce the CI contracts: warm cache-miss p50 at least 2x
better than cold p50, and (on ≥4-core runners) process-executor
cache-miss throughput at least 2x the thread executor's.
"""

import json
import os
import pathlib
import random
import statistics
import subprocess
import sys
import threading
import time

import pytest

from repro.problems import get_problem
from repro.server import FeedbackClient, FeedbackHTTPServer, FeedbackService, warm_registry
from repro.studentgen import generate_corpus

PROBLEM_NAME = "evalPoly-6.00x"
TIMEOUT_S = float(os.environ.get("REPRO_BENCH_TIMEOUT", "20"))
COLD_INVOCATIONS = int(os.environ.get("REPRO_BENCH_COLD_N", "6"))
WARM_SUBMISSIONS = int(os.environ.get("REPRO_BENCH_WARM_N", "12"))
ZIPF_REQUESTS = int(os.environ.get("REPRO_BENCH_ZIPF_N", "80"))
SCALE_WORKERS = int(
    os.environ.get(
        "REPRO_BENCH_SCALE_WORKERS", str(max(2, min(4, os.cpu_count() or 1)))
    )
)

_RESULTS: dict = {}
_BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"
_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _percentiles(samples):
    ordered = sorted(samples)
    return {
        "n": len(ordered),
        "p50": statistics.median(ordered),
        "p95": ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))],
        "mean": statistics.fmean(ordered),
    }


@pytest.fixture(scope="module")
def submissions(tmp_path_factory):
    """Distinct incorrect submissions, also written out for the cold CLI."""
    problem = get_problem(PROBLEM_NAME)
    corpus = generate_corpus(
        problem, incorrect_count=WARM_SUBMISSIONS, seed=7
    )
    # Only canonically distinct submissions: a duplicate would be a cache
    # hit and contaminate the cache-miss latency sample.
    from repro.service.canonical import canonicalize

    seen, sources = set(), []
    for submission in corpus.incorrect:
        digest = canonicalize(submission.source, problem.spec).digest
        if digest not in seen:
            seen.add(digest)
            sources.append(submission.source)
    directory = tmp_path_factory.mktemp("cold-submissions")
    paths = []
    for index, source in enumerate(sources):
        path = directory / f"s{index:03d}.py"
        path.write_text(source)
        paths.append(path)
    return sources, paths


@pytest.fixture(scope="module")
def served():
    warmup = warm_registry(names=[PROBLEM_NAME])
    service = FeedbackService(
        warmup=warmup, jobs=2, queue_limit=64, default_timeout_s=TIMEOUT_S
    )
    server = FeedbackHTTPServer(service, port=0)
    server.serve_in_thread()
    client = FeedbackClient(port=server.port)
    yield service, client
    client.close()
    server.shutdown_gracefully()


@pytest.fixture(scope="module", autouse=True)
def _write_serve_json():
    yield
    if not _RESULTS:
        return
    payload = {
        "workload": (
            f"{PROBLEM_NAME}: {COLD_INVOCATIONS} cold CLI invocations vs "
            f"{WARM_SUBMISSIONS} warm cache-miss requests vs "
            f"{ZIPF_REQUESTS} zipf(1.2)-resubmission requests; "
            f"cache-miss scaling at {SCALE_WORKERS}-way concurrency, "
            f"thread vs process executor; fleet: router warm-hit "
            f"overhead + {FLEET_SUBMISSIONS}-submission miss stream, "
            f"1 vs 2 backend processes"
        ),
        "unix_time": time.time(),
        **_RESULTS,
    }
    cold = _RESULTS.get("cold", {}).get("p50")
    warm = _RESULTS.get("warm_miss", {}).get("p50")
    if cold and warm:
        payload["warm_vs_cold_p50_speedup"] = cold / warm
        print(f"\nwarm-vs-cold p50 speedup: {cold / warm:.1f}x")
    _BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


def test_cold_per_invocation(submissions):
    """One CLI process per submission — the no-daemon baseline."""
    _, paths = submissions
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src")
    samples = []
    for index in range(COLD_INVOCATIONS):
        path = paths[index % len(paths)]
        start = time.perf_counter()
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "feedback",
                str(path),
                "--problem",
                PROBLEM_NAME,
                "--timeout",
                str(TIMEOUT_S),
            ],
            env=env,
            cwd=str(_REPO_ROOT),
            capture_output=True,
            text=True,
        )
        samples.append(time.perf_counter() - start)
        assert proc.returncode in (0, 1), proc.stderr  # 1 = honest no_fix
    _RESULTS["cold"] = _percentiles(samples)


def test_warm_cache_miss_latency(served, submissions):
    """Every request a distinct submission: the server still solves each
    one, but never rebuilds per-problem state."""
    _, client = served
    sources, _ = submissions
    samples = []
    statuses = {}
    for source in sources:
        start = time.perf_counter()
        out = client.grade(PROBLEM_NAME, source, timeout_s=TIMEOUT_S)
        samples.append(time.perf_counter() - start)
        assert not out["cached"] and not out["deduped"]
        status = out["record"]["status"]
        statuses[status] = statuses.get(status, 0) + 1
    _RESULTS["warm_miss"] = {**_percentiles(samples), "by_status": statuses}


def test_zipf_resubmission_throughput(served, submissions):
    """Classroom-shaped traffic: a few submissions dominate the stream."""
    service, client = served
    sources, _ = submissions
    rng = random.Random(7)
    weights = [1.0 / (rank + 1) ** 1.2 for rank in range(len(sources))]
    stream = rng.choices(sources, weights=weights, k=ZIPF_REQUESTS)
    before = service.stats()
    start = time.perf_counter()
    for source in stream:
        client.grade(PROBLEM_NAME, source, timeout_s=TIMEOUT_S)
    elapsed = time.perf_counter() - start
    after = service.stats()
    hits = after["cache_hits"] - before["cache_hits"]
    requests = after["requests"] - before["requests"]
    _RESULTS["zipf"] = {
        "requests": requests,
        "seconds": elapsed,
        "req_per_s": requests / elapsed,
        "cache_hit_ratio": hits / requests,
    }
    # The telemetry histograms have now seen every request of the cold/
    # warm/zipf sections: publish the server's own latency percentiles
    # (p50/p95/p99 per outcome, per problem, per stage) alongside the
    # client-side timings above.
    _RESULTS["latency"] = after["latency"]
    assert requests == ZIPF_REQUESTS
    # The warm-miss test already graded every submission, so this stream
    # is pure cache traffic: the hit ratio must be total.
    assert hits == ZIPF_REQUESTS


def test_obs_overhead_contract(served, submissions):
    """CI contract: telemetry costs ≤ 3% of zipf throughput.

    The same zipf-shaped stream as above (pure cache hits — the path
    where fixed per-request telemetry cost is the largest *fraction* of
    the work), alternating obs-on and obs-off runs over the live HTTP
    server. Client and server threads live in this one process and the
    work is CPU-bound, so the modes are compared on best-of-``repeats``
    **CPU** throughput — wall clock on a shared runner is a scheduling
    lottery that swamps a 3% bar; CPU seconds charge exactly the code
    under test.
    """
    from repro.obs.config import using_obs

    _, client = served
    sources, _ = submissions
    rng = random.Random(11)
    weights = [1.0 / (rank + 1) ** 1.2 for rank in range(len(sources))]
    # A longer stream than the throughput section: the contract divides
    # two timings of the same work, so per-run noise must be small
    # relative to a 3% bar.
    stream = rng.choices(sources, weights=weights, k=4 * ZIPF_REQUESTS)

    def run() -> float:
        start = time.process_time()
        for source in stream:
            client.grade(PROBLEM_NAME, source, timeout_s=TIMEOUT_S)
        return time.process_time() - start

    run()  # one untimed pass so both modes start equally warm
    # GC pauses land asymmetrically across short runs and would swamp a
    # 3% bar (same reason the CI bench steps pass --benchmark-disable-gc)
    # — the *allocation* cost of telemetry still counts, collection is
    # deferred to after the measurement.
    import gc

    signals = []
    noises = []
    on_cpu = []
    off_cpu = []
    gc.collect()
    gc.disable()
    try:
        for _ in range(7):
            # Each round is an off/on/off sandwich: the two off runs
            # bracket the on run (cancelling linear drift) *and* their
            # disagreement measures what the runner's noise floor is —
            # the only way to tell a 2% telemetry cost from a 5% noise
            # burst on a shared box.
            with using_obs(False):
                off_before = run()
            with using_obs(True):
                on = run()
            with using_obs(False):
                off_after = run()
            signals.append(2.0 * on / (off_before + off_after))
            noises.append(abs(off_before / off_after - 1.0))
            on_cpu.append(on)
            off_cpu.extend((off_before, off_after))
    finally:
        gc.enable()
    overhead = statistics.median(signals) - 1.0
    noise = statistics.median(noises)
    requests = len(stream)
    rate_on = requests / statistics.median(on_cpu)
    rate_off = requests / statistics.median(off_cpu)
    _RESULTS["obs_overhead"] = {
        "cpu_req_per_s_obs_on": rate_on,
        "cpu_req_per_s_obs_off": rate_off,
        "overhead_fraction": overhead,
        "noise_floor_fraction": noise,
    }
    print(
        f"\nobs overhead on zipf cache hits: {overhead * 100:.2f}% "
        f"({rate_on:.0f} vs {rate_off:.0f} req/s; "
        f"noise floor {noise * 100:.2f}%)"
    )
    if noise > 0.015:
        pytest.skip(
            f"runner too noisy to resolve a 3% bar: identical obs-off "
            f"runs disagree by {noise * 100:.1f}% (median of 7 rounds); "
            f"measured overhead {overhead * 100:.2f}% recorded in "
            f"BENCH_serve.json"
        )
    assert overhead <= 0.03, (
        f"telemetry costs {overhead * 100:.1f}% of zipf throughput "
        f"({rate_on:.0f} req/s on vs {rate_off:.0f} req/s off)"
    )


def _cache_miss_throughput(executor: str, sources) -> dict:
    """Distinct submissions through a fresh service under ``executor``.

    A fresh service (and a fresh in-memory cache) per run: every request
    is a genuine cache-miss solve. ``SCALE_WORKERS`` client threads with
    one keep-alive connection each keep the admission gate saturated, so
    the measured rate is the executor's, not the load generator's.
    """
    warmup = warm_registry(names=[PROBLEM_NAME])
    service = FeedbackService(
        warmup=warmup,
        jobs=SCALE_WORKERS,
        queue_limit=256,
        default_timeout_s=TIMEOUT_S,
        executor=executor,
        workers=SCALE_WORKERS,
    )
    server = FeedbackHTTPServer(service, port=0)
    server.serve_in_thread()
    lanes = [list(sources[lane::SCALE_WORKERS]) for lane in range(SCALE_WORKERS)]
    statuses: dict = {}
    lock = threading.Lock()

    def drive(lane):
        client = FeedbackClient(port=server.port)
        try:
            for source in lane:
                out = client.grade(PROBLEM_NAME, source, timeout_s=TIMEOUT_S)
                assert not out["cached"] and not out["deduped"]
                status = out["record"]["status"]
                with lock:
                    statuses[status] = statuses.get(status, 0) + 1
        finally:
            client.close()

    threads = [
        threading.Thread(target=drive, args=(lane,)) for lane in lanes
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    server.shutdown_gracefully()
    return {
        "executor": executor,
        "requests": len(sources),
        "seconds": elapsed,
        "req_per_s": len(sources) / elapsed,
        "by_status": statuses,
    }


def test_cache_miss_scaling_thread_vs_process(submissions):
    """Same miss stream, both executors, N-way concurrency."""
    sources, _ = submissions
    thread_run = _cache_miss_throughput("thread", sources)
    process_run = _cache_miss_throughput("process", sources)
    _RESULTS["scaling"] = {
        "workers": SCALE_WORKERS,
        "cpu_count": os.cpu_count(),
        "thread": thread_run,
        "process": process_run,
        "process_vs_thread_speedup": (
            process_run["req_per_s"] / thread_run["req_per_s"]
        ),
    }
    # Whatever the speedup, both executors must have settled every
    # submission with a real verdict — a worker that errors its way to
    # "throughput" would win every benchmark.
    for run in (thread_run, process_run):
        assert sum(run["by_status"].values()) == len(sources)
        assert run["by_status"].get("error", 0) == 0, run
    assert thread_run["by_status"] == process_run["by_status"]


def test_process_scaling_contract():
    """CI contract: on a ≥4-core runner, ``--executor process --workers
    4`` grades cache misses at ≥2x the thread executor's rate.

    The engine loop is pure-Python CPU work: the thread executor cannot
    exceed ~1 core, so 4 preforked workers have a 4-core budget to clear
    the 2x bar (measured locally: near-linear). Fewer cores can't
    demonstrate parallelism, so the pin is recorded but not enforced.
    """
    scaling = _RESULTS["scaling"]
    speedup = scaling["process_vs_thread_speedup"]
    print(f"\nprocess-vs-thread cache-miss speedup: {speedup:.2f}x "
          f"({scaling['workers']} workers, {scaling['cpu_count']} cores)")
    if (os.cpu_count() or 1) < 4 or SCALE_WORKERS < 4:
        pytest.skip(
            f"scaling contract needs >=4 cores and >=4 workers "
            f"(have {os.cpu_count()} cores, {SCALE_WORKERS} workers)"
        )
    assert speedup >= 2.0, (
        f"process executor is only {speedup:.2f}x the thread executor "
        f"on cache misses with {SCALE_WORKERS} workers"
    )


# -- Fleet tier: router overhead + N-node cache-miss scaling --------------

FLEET_SUBMISSIONS = int(os.environ.get("REPRO_BENCH_FLEET_N", "24"))
ROUTER_HIT_SAMPLES = int(os.environ.get("REPRO_BENCH_ROUTER_HIT_N", "120"))
#: The published router-overhead target (added warm-hit p50); the hard
#: assertion below is looser because a shared runner's scheduling jitter
#: routinely exceeds 1ms, but the measured number lands in the JSON.
ROUTER_OVERHEAD_TARGET_MS = 1.0


@pytest.fixture(scope="module")
def fleet_sources():
    """A larger distinct-submission pool than ``submissions``: fleet
    scaling splits the miss stream across N backends, so each node must
    still see enough solves for a stable rate."""
    from repro.service.canonical import canonicalize

    problem = get_problem(PROBLEM_NAME)
    corpus = generate_corpus(
        problem, incorrect_count=FLEET_SUBMISSIONS, seed=13
    )
    seen, sources = set(), []
    for submission in corpus.incorrect:
        digest = canonicalize(submission.source, problem.spec).digest
        if digest not in seen:
            seen.add(digest)
            sources.append(submission.source)
    return sources


def test_router_warm_hit_overhead(served, submissions):
    """What the routing tier adds on the cheapest path: a warm cache
    hit, direct-to-backend vs through an in-process router fronting the
    *same* backend. Samples interleave, so runner drift charges both
    sides equally."""
    from repro.fleet import FleetRouter

    _, direct = served
    sources, _ = submissions
    source = sources[0]
    router = FleetRouter(
        [f"{direct.host}:{direct.port}"], problems=[PROBLEM_NAME]
    )
    router.serve_in_thread()
    routed = FeedbackClient(router.host, router.port, timeout_s=TIMEOUT_S)
    try:
        # One untimed pass each: ensures the record is cached (this test
        # must stand alone in the CI fleet job) and both keep-alive
        # connections are established before sampling starts.
        direct.grade(PROBLEM_NAME, source, timeout_s=TIMEOUT_S)
        out = routed.grade(PROBLEM_NAME, source, timeout_s=TIMEOUT_S)
        assert out["cached"] is True
        direct_samples, routed_samples = [], []
        for _ in range(ROUTER_HIT_SAMPLES):
            start = time.perf_counter()
            assert direct.grade(
                PROBLEM_NAME, source, timeout_s=TIMEOUT_S
            )["cached"]
            direct_samples.append(time.perf_counter() - start)
            start = time.perf_counter()
            assert routed.grade(
                PROBLEM_NAME, source, timeout_s=TIMEOUT_S
            )["cached"]
            routed_samples.append(time.perf_counter() - start)
    finally:
        routed.close()
        router.close()
    direct_p = _percentiles(direct_samples)
    routed_p = _percentiles(routed_samples)
    added_ms = (routed_p["p50"] - direct_p["p50"]) * 1000.0
    _RESULTS.setdefault("fleet", {})["router_warm_hit"] = {
        "samples": ROUTER_HIT_SAMPLES,
        "direct_p50_ms": direct_p["p50"] * 1000.0,
        "routed_p50_ms": routed_p["p50"] * 1000.0,
        "added_p50_ms": added_ms,
        "target_added_p50_ms": ROUTER_OVERHEAD_TARGET_MS,
    }
    print(
        f"\nrouter warm-hit overhead: +{added_ms:.3f}ms p50 "
        f"({direct_p['p50'] * 1000:.3f}ms direct, "
        f"{routed_p['p50'] * 1000:.3f}ms routed; "
        f"target +{ROUTER_OVERHEAD_TARGET_MS}ms)"
    )
    # Sanity ceiling, not the target: one routed hop must stay firmly
    # sub-solve (a solve is tens of ms at minimum).
    assert added_ms <= 25.0, _RESULTS["fleet"]["router_warm_hit"]


def _fleet_cache_miss_throughput(n, sources, log_dir) -> dict:
    """Distinct submissions through an N-backend subprocess fleet.

    Unlike the in-process executor scaling above, each backend is a real
    ``repro.cli serve`` process — its own interpreter and GIL — so this
    measures what the routing tier itself scales to."""
    from repro.fleet import start_fleet

    fleet = start_fleet(
        n,
        only=[PROBLEM_NAME],
        jobs=SCALE_WORKERS,
        queue=256,
        timeout_s=TIMEOUT_S,
        log_dir=str(log_dir),
    )
    statuses: dict = {}
    lock = threading.Lock()
    errors: list = []

    def drive(lane):
        client = fleet.client(timeout_s=120.0)
        try:
            for source in lane:
                out = client.grade(PROBLEM_NAME, source, timeout_s=TIMEOUT_S)
                assert not out["cached"] and not out["deduped"]
                status = out["record"]["status"]
                with lock:
                    statuses[status] = statuses.get(status, 0) + 1
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            client.close()

    try:
        lanes = [
            list(sources[lane::SCALE_WORKERS])
            for lane in range(SCALE_WORKERS)
        ]
        threads = [
            threading.Thread(target=drive, args=(lane,)) for lane in lanes
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        assert not errors, errors
        stats_client = fleet.client()
        try:
            graded = {
                node: payload.get("graded", 0)
                for node, payload in stats_client.stats()["nodes"].items()
            }
        finally:
            stats_client.close()
    finally:
        fleet.stop()
    return {
        "backends": n,
        "requests": len(sources),
        "seconds": elapsed,
        "req_per_s": len(sources) / elapsed,
        "by_status": statuses,
        "graded_per_node": graded,
    }


def test_fleet_cache_miss_scaling(fleet_sources, tmp_path_factory):
    """The same miss stream against one backend process and against a
    2-backend fleet, both behind the router."""
    single = _fleet_cache_miss_throughput(
        1, fleet_sources, tmp_path_factory.mktemp("fleet-1")
    )
    duo = _fleet_cache_miss_throughput(
        2, fleet_sources, tmp_path_factory.mktemp("fleet-2")
    )
    _RESULTS.setdefault("fleet", {})["scaling"] = {
        "client_threads": SCALE_WORKERS,
        "cpu_count": os.cpu_count(),
        "single": single,
        "n2": duo,
        "n2_vs_single_speedup": duo["req_per_s"] / single["req_per_s"],
    }
    # Both fleets settled every submission with a real verdict, and the
    # 2-node ring actually spread the work.
    for run in (single, duo):
        assert sum(run["by_status"].values()) == len(fleet_sources)
        assert run["by_status"].get("error", 0) == 0, run
    assert single["by_status"] == duo["by_status"]
    assert len(duo["graded_per_node"]) == 2
    assert all(count > 0 for count in duo["graded_per_node"].values()), duo


def test_fleet_scaling_contract():
    """CI contract: on a ≥4-core runner, 2 backend processes clear
    ≥1.8x one backend's cache-miss rate through the same router.

    Each backend is GIL-bound to ~one core on this pure-Python workload,
    so two processes have two cores of budget — minus routing overhead,
    1.8x is the conservative pin. Fewer cores can't demonstrate the
    parallelism; the measurement is recorded but not enforced."""
    scaling = _RESULTS["fleet"]["scaling"]
    speedup = scaling["n2_vs_single_speedup"]
    print(
        f"\nfleet n2-vs-single cache-miss speedup: {speedup:.2f}x "
        f"({scaling['client_threads']} client threads, "
        f"{scaling['cpu_count']} cores)"
    )
    if (os.cpu_count() or 1) < 4:
        pytest.skip(
            f"fleet scaling contract needs >=4 cores (have "
            f"{os.cpu_count()}); measured {speedup:.2f}x recorded in "
            f"BENCH_serve.json"
        )
    assert speedup >= 1.8, (
        f"2-backend fleet is only {speedup:.2f}x one backend on cache "
        f"misses"
    )


def test_warm_speedup_contract():
    """CI contract: warm cache-miss p50 ≥ 2x better than cold p50.

    (Locally the gap is dominated by interpreter+import+warmup time and
    is typically ≥ 5x; the CI pin is conservative for slow runners.)
    """
    cold = _RESULTS["cold"]["p50"]
    warm = _RESULTS["warm_miss"]["p50"]
    assert cold / warm >= 2.0, (
        f"warm p50 {warm:.3f}s is only {cold / warm:.1f}x better than "
        f"cold p50 {cold:.3f}s"
    )
