"""Benchmark: Table 1 — per-problem feedback generation.

Regenerates the paper's main evaluation table on synthetic corpora: for
every benchmark problem, the share of incorrect submissions receiving
feedback and the per-submission solve times. The pytest-benchmark timing
target is one representative (median-difficulty) submission per problem —
the quantity the paper's Avg/Median columns measure.
"""

import time

import pytest

from benchmarks.conftest import PROBLEMS, TIMEOUT_S, save_result
from repro.core import generate_feedback
from repro.engines import BoundedVerifier
from repro.problems import get_problem
from repro.studentgen import generate_corpus


@pytest.mark.parametrize("name", PROBLEMS)
def test_feedback_time_per_submission(benchmark, name, bench_config):
    """Time one median mutated submission through the full pipeline."""
    problem = get_problem(name)
    corpus = generate_corpus(
        problem, incorrect_count=6, seed=bench_config["seed"]
    )
    mutated = [s for s in corpus.incorrect if s.origin == "mutated"]
    submission = mutated[len(mutated) // 2] if mutated else corpus.incorrect[0]
    verifier = BoundedVerifier(problem.spec)
    verifier.inputs  # materialize outside the timed region

    def solve():
        return generate_feedback(
            submission.source,
            problem.spec,
            problem.model,
            timeout_s=TIMEOUT_S,
            verifier=verifier,
        )

    report = benchmark.pedantic(solve, rounds=1, iterations=1)
    benchmark.extra_info["status"] = report.status
    benchmark.extra_info["cost"] = report.cost
    assert report.status in ("fixed", "no_fix", "timeout")


def test_batch_runner_parallel_speedup(benchmark, bench_config):
    """Serial vs parallel batch runner on one mid-sized corpus.

    The batch service's headline claim: with ``--jobs 4`` the same corpus
    grades measurably faster than the serial path (the per-submission
    solver work is CPU-bound and independent). Caching is disabled on
    both sides so the comparison times actual solving.
    """
    from repro.harness import run_problem

    # recurPower mixes sub-second solves with several multi-second and
    # budget-exhausting submissions — the shape where parallelism pays.
    name = "recurPower-6.00x"
    timeout_s = min(TIMEOUT_S, 10.0)
    problem = get_problem(name)
    corpus = generate_corpus(
        problem, incorrect_count=10, seed=bench_config["seed"]
    )

    start = time.monotonic()
    serial = run_problem(
        problem, corpus=corpus, timeout_s=timeout_s, jobs=1
    )
    serial_s = time.monotonic() - start

    start = time.monotonic()
    parallel = run_problem(
        problem, corpus=corpus, timeout_s=timeout_s, jobs=4
    )
    parallel_s = time.monotonic() - start

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["serial_s"] = round(serial_s, 2)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 2)
    benchmark.extra_info["speedup"] = round(serial_s / max(parallel_s, 1e-9), 2)
    save_result(
        "batch_speedup",
        f"batch runner, {name}, {len(corpus.incorrect)} submissions: "
        f"serial {serial_s:.2f}s vs --jobs 4 {parallel_s:.2f}s "
        f"({serial_s / max(parallel_s, 1e-9):.2f}x)",
    )
    # Per-submission solver budgets are wall-clock, so worker contention
    # can push a borderline search over the budget (on few-core machines
    # especially). Parallelism may therefore *lose* budget-bound results
    # but must never invent them, and the deterministic categories
    # (correct, syntax error, ...) must agree exactly.
    budget_bound = ("fixed", "no_fix", "timeout")
    for s, p in zip(serial.records, parallel.records):
        if p.status == "fixed":
            assert s.status == "fixed"
        elif p.status in ("no_fix", "timeout"):
            assert s.status in budget_bound
        else:
            assert s.status == p.status
    assert parallel_s < serial_s


def test_table1_rows(benchmark, table1_runs):
    """Regenerate and persist the full Table 1 (paper vs measured)."""
    from repro.harness import format_table1

    text = benchmark.pedantic(
        lambda: format_table1(table1_runs), rounds=1, iterations=1
    )
    save_result("table1", text)
    # Sanity on the headline claim: a majority of fixable-population
    # submissions get feedback (paper: 64% overall incl. conceptual).
    total = sum(run.incorrect for _, run in table1_runs)
    fixed = sum(run.fixed for _, run in table1_runs)
    assert total > 0
    assert fixed / total > 0.25, f"only {fixed}/{total} fixed"
