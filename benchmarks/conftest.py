"""Shared benchmark configuration.

Environment knobs (defaults keep a full ``pytest benchmarks/
--benchmark-only`` run laptop-sized; EXPERIMENTS.md records both scales):

- ``REPRO_BENCH_CORPUS``  — incorrect submissions per problem (default 10)
- ``REPRO_BENCH_TIMEOUT`` — per-submission solver budget in s (default 30)
- ``REPRO_BENCH_JOBS``    — batch-runner worker processes (default 1)
- ``REPRO_BENCH_PROBLEMS``— comma list of problems, or "all"
  (default: a representative 8-problem subset spanning Table 1)
"""

from __future__ import annotations

import os
import pathlib

import pytest

CORPUS_SIZE = int(os.environ.get("REPRO_BENCH_CORPUS", "8"))
TIMEOUT_S = float(os.environ.get("REPRO_BENCH_TIMEOUT", "20"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

DEFAULT_PROBLEMS = [
    "prodBySum-6.00",
    "compDeriv-6.00x",
    "evalPoly-6.00x",
    "oddTuples-6.00x",
    "iterPower-6.00x",
    "recurPower-6.00x",
    "iterGCD-6.00x",
    "hangman1-str-6.00x",
]

_env_problems = os.environ.get("REPRO_BENCH_PROBLEMS", "")
if _env_problems == "all":
    from repro.problems import all_problems

    PROBLEMS = [p.name for p in all_problems()]
elif _env_problems:
    PROBLEMS = _env_problems.split(",")
else:
    PROBLEMS = DEFAULT_PROBLEMS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)


def save_result(name: str, text: str) -> None:
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def bench_config():
    return {
        "corpus_size": CORPUS_SIZE,
        "timeout_s": TIMEOUT_S,
        "seed": SEED,
        "jobs": JOBS,
        "problems": PROBLEMS,
    }


@pytest.fixture(scope="session")
def table1_runs(bench_config):
    """Session-cached Table 1 runs shared by several benchmarks."""
    from repro.harness import run_table1

    return run_table1(
        corpus_size=bench_config["corpus_size"],
        seed=bench_config["seed"],
        timeout_s=bench_config["timeout_s"],
        problems=bench_config["problems"],
        jobs=bench_config["jobs"],
    )
