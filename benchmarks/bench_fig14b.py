"""Benchmark: Fig. 14(b) — corrected attempts vs error-model size.

The paper adds rules to each problem's model one at a time (E0 ⊂ E1 ⊂ ...)
and shows the corrected count growing — "adding a single rule to the error
model can lead to correction of hundreds of attempts" (repetitive-mistakes
hypothesis). We replay that with rule prefixes of the shipped models.
"""

import pytest

from benchmarks.conftest import TIMEOUT_S, save_result
from repro.harness import format_fig14b, run_fig14b
from repro.problems import get_problem

PROGRESSION_PROBLEMS = ["compDeriv-6.00x", "iterPower-6.00x"]


@pytest.mark.parametrize("name", PROGRESSION_PROBLEMS)
def test_model_growth(benchmark, name, bench_config):
    problem = get_problem(name)

    def run():
        return run_fig14b(
            problem,
            corpus_size=min(bench_config["corpus_size"], 6),
            seed=bench_config["seed"],
            timeout_s=min(TIMEOUT_S, 15),
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(f"fig14b_{name}", format_fig14b(name, results))
    fixed_counts = [fixed for _, fixed in results]
    # E0 (no rules) fixes nothing; the full model fixes the most. Growth
    # is near-monotone: a larger rule set can only widen the space, but a
    # wider space may occasionally push one fix past the timeout.
    assert fixed_counts[0] == 0
    assert fixed_counts[-1] > 0
    assert fixed_counts[-1] >= max(fixed_counts) - 1
    assert all(b >= a - 1 for a, b in zip(fixed_counts, fixed_counts[1:]))
