"""Ablation benchmarks: the design choices DESIGN.md calls out.

- E-ABL1 — CEGISMIN vs brute-force enumeration (the paper's Section 7.2
  claim that mutation-style enumeration is infeasible on these spaces);
- E-ABL2 — incremental vs restart-per-bound solving (the Section 4.2
  incremental-solving claim);
- ascending vs descending cost search (our documented deviation from
  Algorithm 1's literal order);
- compiled vs tree-walking execution backend (the candidate-evaluation
  substrate the whole search bottoms out in).
"""

import pytest

from benchmarks.conftest import save_result
from repro.compile import using_backend
from repro.core.rewriter import rewrite_submission
from repro.engines import BoundedVerifier, CegisMinEngine, EnumerativeEngine
from repro.mpy import parse_program
from repro.problems import get_problem
from repro.tilde.semantics import candidate_count

FIG2A = """def computeDeriv(poly):
    deriv = []
    zero = 0
    if (len(poly) == 1):
        return deriv
    for e in range(0,len(poly)):
        if (poly[e] == 0):
            zero += 1
        else:
            deriv.append(poly[e]*e)
    return deriv
"""


@pytest.fixture(scope="module")
def workload():
    problem = get_problem("compDeriv-6.00x")
    module = parse_program(FIG2A)
    tilde, registry = rewrite_submission(module, problem.spec, problem.model)
    verifier = BoundedVerifier(problem.spec)
    verifier.inputs
    return problem, tilde, registry, verifier


class TestEngineComparison:
    def test_cegismin(self, benchmark, workload):
        problem, tilde, registry, verifier = workload

        def solve():
            return CegisMinEngine().solve(
                tilde, registry, problem.spec, verifier, timeout_s=60
            )

        result = benchmark.pedantic(solve, rounds=1, iterations=1)
        benchmark.extra_info["cost"] = result.cost
        benchmark.extra_info["candidates"] = candidate_count(tilde)
        # The engine-depth telemetry the obs layer exports as
        # ``repro_*_total`` counters — recorded here so the benchmark
        # artifact explains *where* the wall time went, not just how
        # much there was.
        for key in (
            "sat_calls",
            "sat_conflicts",
            "sat_decisions",
            "sat_propagations",
            "table_leaves",
            "forker_runs",
            "candidate_runs",
            "fuel_consumed",
        ):
            if key in result.stats:
                benchmark.extra_info[key] = result.stats[key]
        assert result.status == "fixed"

    def test_enumerative_baseline(self, benchmark, workload):
        """The brute-force comparator on the same ~10^6+ space."""
        problem, tilde, registry, verifier = workload

        def solve():
            return EnumerativeEngine(
                max_cost=3, max_candidates=200_000
            ).solve(tilde, registry, problem.spec, verifier, timeout_s=60)

        result = benchmark.pedantic(solve, rounds=1, iterations=1)
        benchmark.extra_info["status"] = result.status
        benchmark.extra_info["candidates_tried"] = result.iterations
        # The paper's point: enumeration either times out, exhausts its
        # budget, or takes far longer than the symbolic engine. Any
        # terminating status is recorded; the comparison lives in the
        # timing columns.
        assert result.status in ("fixed", "timeout", "exhausted", "no_fix")


class TestExecutionBackend:
    """End-to-end engine wall time under each execution substrate."""

    @pytest.mark.parametrize("backend", ["compiled", "interp"])
    def test_cegismin_backend(self, benchmark, workload, backend):
        problem, tilde, registry, verifier = workload

        def solve():
            with using_backend(backend):
                return CegisMinEngine().solve(
                    tilde, registry, problem.spec, verifier, timeout_s=60
                )

        result = benchmark.pedantic(solve, rounds=1, iterations=1)
        benchmark.extra_info["backend"] = backend
        benchmark.extra_info["cost"] = result.cost
        assert result.status == "fixed"

    @pytest.mark.parametrize("backend", ["compiled", "interp"])
    def test_enumerative_backend(self, benchmark, workload, backend):
        problem, tilde, registry, verifier = workload

        def solve():
            with using_backend(backend):
                return EnumerativeEngine(
                    max_cost=2, max_candidates=50_000
                ).solve(
                    tilde, registry, problem.spec, verifier, timeout_s=60
                )

        result = benchmark.pedantic(solve, rounds=1, iterations=1)
        benchmark.extra_info["backend"] = backend
        benchmark.extra_info["status"] = result.status
        assert result.status in ("fixed", "timeout", "exhausted", "no_fix")


class TestIncrementalSolving:
    def test_incremental(self, benchmark, workload):
        problem, tilde, registry, verifier = workload

        def solve():
            return CegisMinEngine(incremental=True).solve(
                tilde, registry, problem.spec, verifier, timeout_s=60
            )

        result = benchmark.pedantic(solve, rounds=1, iterations=1)
        assert result.status == "fixed"

    def test_restart_per_bound(self, benchmark, workload):
        problem, tilde, registry, verifier = workload

        def solve():
            return CegisMinEngine(incremental=False).solve(
                tilde, registry, problem.spec, verifier, timeout_s=60
            )

        result = benchmark.pedantic(solve, rounds=1, iterations=1)
        assert result.status == "fixed"


class TestSearchDirection:
    def test_ascending(self, benchmark, workload):
        problem, tilde, registry, verifier = workload

        def solve():
            return CegisMinEngine(strategy="ascend").solve(
                tilde, registry, problem.spec, verifier, timeout_s=60
            )

        result = benchmark.pedantic(solve, rounds=1, iterations=1)
        assert result.status == "fixed" and result.minimal

    def test_descending_algorithm1_order(self, benchmark, workload):
        problem, tilde, registry, verifier = workload

        def solve():
            return CegisMinEngine(strategy="descend").solve(
                tilde, registry, problem.spec, verifier, timeout_s=60
            )

        result = benchmark.pedantic(solve, rounds=1, iterations=1)
        benchmark.extra_info["status"] = result.status
        assert result.status in ("fixed", "timeout")


def test_candidate_space_sizes(benchmark, workload):
    """Record the search-space sizes that motivate symbolic search."""
    problem, tilde, registry, verifier = workload
    size = benchmark(lambda: candidate_count(tilde))
    text = (
        f"Fig. 2(a) under the full computeDeriv model:\n"
        f"  holes: {len(registry)}\n"
        f"  candidate programs: {size:,}\n"
        f"(paper: \"more than 10^12 candidate programs for some of the "
        f"benchmark problems\"; 32 for the Section 2.1 simple model)"
    )
    save_result("candidate_spaces", text)
    assert size > 10_000
