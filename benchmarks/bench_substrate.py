"""Substrate micro-benchmarks: execution backends, SAT solver, transformer.

Not a paper artifact, but the quantities every experiment above is built
from — regressions here show up multiplied by corpus sizes.

The execution-backend benchmarks all drive the *same workload* (the
computeDeriv reference on ``[3, -2, 1]``) through the three substrate
shapes the engines use:

- ``interp_fresh``     — tree-walker, fresh interpreter per run (the
  stateful-module path);
- ``interp``           — tree-walker, interpreter reused across runs (the
  engines' default interpreter hot loop);
- ``compiled``         — the closure-compiled backend, lowered once.

Plus the CEGIS-shaped pair (``candidate_interp`` / ``candidate_compiled``)
that alternates hole assignments between runs — the loop Table 1 spends
its time in. A session finalizer writes every mean to
``BENCH_substrate.json`` at the repo root so the perf trajectory is
tracked PR-over-PR, and the final test enforces the compiled backend's
contract: ≥3x the reused tree-walker on the same workload.
"""

import json
import pathlib
import random
import time

import pytest

from repro.compile import compile_program
from repro.core.rewriter import rewrite_submission
from repro.eml import apply_error_model, parse_error_model
from repro.mpy import parse_program, run_function
from repro.mpy.interp import Interpreter
from repro.problems import get_problem
from repro.sat import SAT, CountingNetwork, Solver
from repro.symbolic.recorder import RecordingInterpreter

DERIV = get_problem("compDeriv-6.00x")
WORKLOAD_ARGS = ([3, -2, 1],)
EXPECTED = [-2, 2]

_SUBSTRATE_RESULTS: dict = {}
_BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_substrate.json"
)


def _record(name: str, benchmark) -> None:
    _SUBSTRATE_RESULTS[name] = {
        "mean_s": benchmark.stats.stats.mean,
        "ops_per_s": 1.0 / benchmark.stats.stats.mean,
        "rounds": benchmark.stats.stats.rounds,
    }


@pytest.fixture(scope="session", autouse=True)
def _write_substrate_json():
    yield
    if not _SUBSTRATE_RESULTS:
        return
    payload = {
        "workload": (
            f"{DERIV.name} reference, args={WORKLOAD_ARGS!r}, plus the "
            "Fig. 2 candidate space under alternating hole assignments"
        ),
        "unix_time": time.time(),
        "timings": _SUBSTRATE_RESULTS,
    }
    speedups = {}
    pairs = [
        ("interp", "compiled", "compiled_vs_interp_reuse"),
        ("interp_fresh", "compiled", "compiled_vs_interp_fresh"),
        ("candidate_interp", "candidate_compiled", "candidate_switch"),
    ]
    for slow, fast, label in pairs:
        if slow in _SUBSTRATE_RESULTS and fast in _SUBSTRATE_RESULTS:
            speedups[label] = (
                _SUBSTRATE_RESULTS[slow]["mean_s"]
                / _SUBSTRATE_RESULTS[fast]["mean_s"]
            )
    payload["speedups"] = speedups
    _BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


def test_interpreter_throughput(benchmark):
    """Tree-walker, fresh interpreter per run (stateful-module shape)."""
    module = parse_program(DERIV.spec.reference_source)

    def run():
        return run_function(module, DERIV.spec.function, WORKLOAD_ARGS).value

    result = benchmark(run)
    assert result == EXPECTED
    _record("interp_fresh", benchmark)


def test_interpreter_reuse_throughput(benchmark):
    """Tree-walker, one interpreter reused (the engines' interp path)."""
    module = parse_program(DERIV.spec.reference_source)
    interp = Interpreter(module)

    def run():
        return interp.call(DERIV.spec.function, WORKLOAD_ARGS).value

    result = benchmark(run)
    assert result == EXPECTED
    _record("interp", benchmark)


def test_compiled_throughput(benchmark):
    """Closure-compiled backend: lowered once, run at closure speed."""
    module = parse_program(DERIV.spec.reference_source)
    program = compile_program(module)

    def run():
        return program.call(DERIV.spec.function, WORKLOAD_ARGS).value

    result = benchmark(run)
    assert result == EXPECTED
    _record("compiled", benchmark)


def _fig2_candidate_space():
    model = parse_error_model(
        """
rule RETR: return a -> return [0]
rule RANR: range(a1, a2) -> range(a1 + 1, a2)
rule COMPR: a0 == a1 -> False
"""
    )
    module = parse_program(DERIV.spec.reference_source)
    tilde, registry = rewrite_submission(module, DERIV.spec, model)
    holes = sorted(info.cid for info in registry.holes())
    # Alternate between the default program and single-hole flips — the
    # candidate-switching pattern of the CEGIS synthesis loop.
    assignments = [{}] + [{cid: 1} for cid in holes[:3]]
    return tilde, assignments


def test_candidate_switch_interp(benchmark):
    """RecordingInterpreter sweeping candidates (tree-walker hot loop)."""
    tilde, assignments = _fig2_candidate_space()
    interp = RecordingInterpreter(tilde, {}, fuel=DERIV.spec.fuel)
    fn = DERIV.spec.student_function

    def run():
        total = 0
        for assignment in assignments:
            result = interp.run(fn, WORKLOAD_ARGS, assignment=assignment)
            total += len(result.value)
        return total

    benchmark(run)
    _record("candidate_interp", benchmark)


def test_candidate_switch_compiled(benchmark):
    """Compiled backend: candidate switch is an assignment-array write."""
    tilde, assignments = _fig2_candidate_space()
    program = compile_program(tilde, fuel=DERIV.spec.fuel)
    fn = DERIV.spec.student_function

    def run():
        total = 0
        for assignment in assignments:
            result = program.run(fn, WORKLOAD_ARGS, assignment=assignment)
            total += len(result.value)
        return total

    benchmark(run)
    _record("candidate_compiled", benchmark)


def test_compiled_speedup_contract():
    """The backend's reason to exist: ≥3x the reused tree-walker."""
    if "interp" not in _SUBSTRATE_RESULTS or (
        "compiled" not in _SUBSTRATE_RESULTS
    ):
        pytest.skip("throughput benchmarks were deselected")
    speedup = (
        _SUBSTRATE_RESULTS["interp"]["mean_s"]
        / _SUBSTRATE_RESULTS["compiled"]["mean_s"]
    )
    assert speedup >= 3.0, f"compiled backend only {speedup:.2f}x"


def test_transformer_throughput(benchmark):
    module = parse_program(
        """def computeDeriv(poly):
    deriv = []
    for i in range(1, len(poly)):
        deriv.append(poly[i] * i)
    if len(poly) == 1:
        return [0]
    return deriv
"""
    )

    def transform():
        return apply_error_model(module, DERIV.model, DERIV.spec.param_type_map())

    tilde, registry = benchmark(transform)
    assert len(registry) > 5


def test_sat_solver_3sat(benchmark):
    rng = random.Random(11)
    num_vars = 60
    clauses = [
        [rng.randint(1, num_vars) * rng.choice([1, -1]) for _ in range(3)]
        for _ in range(int(num_vars * 4.0))
    ]

    def solve():
        solver = Solver()
        for _ in range(num_vars):
            solver.new_var()
        for clause in clauses:
            solver.add_clause(clause)
        return solver.solve()

    result = benchmark(solve)
    assert result in ("sat", "unsat")


def test_counting_network_bounds(benchmark):
    def run():
        solver = Solver()
        inputs = [solver.new_var() for _ in range(40)]
        network = CountingNetwork(solver, inputs)
        solver.add_clause(inputs[:5])
        outcomes = []
        for bound in (10, 5, 2, 1):
            outcomes.append(
                solver.solve(assumptions=network.bound_assumption(bound))
            )
        return outcomes

    outcomes = benchmark(run)
    assert outcomes[0] == SAT
