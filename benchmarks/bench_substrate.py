"""Substrate micro-benchmarks: interpreter, SAT solver, transformer.

Not a paper artifact, but the quantities every experiment above is built
from — regressions here show up multiplied by corpus sizes.
"""

import random

import pytest

from repro.eml import apply_error_model
from repro.mpy import parse_program, run_function
from repro.problems import get_problem
from repro.sat import SAT, CountingNetwork, Solver

DERIV = get_problem("compDeriv-6.00x")


def test_interpreter_throughput(benchmark):
    module = parse_program(DERIV.spec.reference_source)

    def run():
        return run_function(
            module, DERIV.spec.function, ([3, -2, 1, 4][:3],)
        ).value

    result = benchmark(run)
    assert result == [-2, 2]


def test_transformer_throughput(benchmark):
    module = parse_program(
        """def computeDeriv(poly):
    deriv = []
    for i in range(1, len(poly)):
        deriv.append(poly[i] * i)
    if len(poly) == 1:
        return [0]
    return deriv
"""
    )

    def transform():
        return apply_error_model(module, DERIV.model, DERIV.spec.param_type_map())

    tilde, registry = benchmark(transform)
    assert len(registry) > 5


def test_sat_solver_3sat(benchmark):
    rng = random.Random(11)
    num_vars = 60
    clauses = [
        [rng.randint(1, num_vars) * rng.choice([1, -1]) for _ in range(3)]
        for _ in range(int(num_vars * 4.0))
    ]

    def solve():
        solver = Solver()
        for _ in range(num_vars):
            solver.new_var()
        for clause in clauses:
            solver.add_clause(clause)
        return solver.solve()

    result = benchmark(solve)
    assert result in ("sat", "unsat")


def test_counting_network_bounds(benchmark):
    def run():
        solver = Solver()
        inputs = [solver.new_var() for _ in range(40)]
        network = CountingNetwork(solver, inputs)
        solver.add_clause(inputs[:5])
        outcomes = []
        for bound in (10, 5, 2, 1):
            outcomes.append(
                solver.solve(assumptions=network.bound_assumption(bound))
            )
        return outcomes

    outcomes = benchmark(run)
    assert outcomes[0] == SAT
