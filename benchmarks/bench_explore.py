"""Explorer ablation benchmark: the counterexample-blocking loop.

The quantity PR 3 changes: when a proposed candidate fails on an input,
how long does it take to refute the candidate's whole free-hole region?

- **table** (explorer on) — one path-forked exploration of the region:
  only *reachable* branch combinations execute, each exactly once, and
  every failing leaf becomes a blocking cube;
- **sweep** (the replaced per-candidate strategy) — run every concrete
  combination of the region's free-hole domains one at a time, the
  uncapped version of the old ``_bulk_refute`` product enumeration.

The workload is real: each Fig. 2 submission is solved once with the
explorer on and every ``(failing candidate, counterexample input)`` pair
the engine actually blocked is recorded; both strategies then replay
exactly those blocking steps. A session finalizer writes
``BENCH_explore.json`` at the repo root, and the final test enforces the
contract: the table strategy is ≥2x the sweep on the aggregate Fig. 2
blocking workload. End-to-end engine times under ``--explorer on|off``
are recorded alongside for the trajectory.
"""

import itertools
import json
import pathlib
import time

import pytest

from repro.core.rewriter import rewrite_submission
from repro.engines import BoundedVerifier, CandidateSpace, CegisMinEngine
from repro.engines.verify import outcomes_match
from repro.mpy import parse_program
from repro.problems import get_problem

FIG2 = {
    "fig2a": """def computeDeriv(poly):
    deriv = []
    zero = 0
    if (len(poly) == 1):
        return deriv
    for e in range(0,len(poly)):
        if (poly[e] == 0):
            zero += 1
        else:
            deriv.append(poly[e]*e)
    return deriv
""",
    "fig2b": """def computeDeriv(poly):
    idx = 1
    deriv = list([])
    plen = len(poly)
    while idx < plen:
        coeff = poly.pop(1)
        deriv += [coeff * idx]
        idx = idx + 1
    if len(poly) < 2:
        return deriv
""",
    "fig2c": """def computeDeriv(poly):
    length = int(len(poly)-1)
    i = length
    deriv = range(1,length)
    if len(poly) == 1:
        deriv = [0]
    else:
        while i >= 0:
            new = poly[i] * i
            i -= 1
            deriv[i] = new
    return deriv
""",
}

_RESULTS: dict = {}
_BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_explore.json"
)


@pytest.fixture(scope="session", autouse=True)
def _write_explore_json():
    yield
    if not _RESULTS:
        return
    workloads = {k: v for k, v in _RESULTS.items() if k in FIG2}
    table_s = sum(w["blocking"]["table_s"] for w in workloads.values())
    sweep_s = sum(w["blocking"]["sweep_s"] for w in workloads.values())
    payload = {
        "workload": (
            "Fig. 2(a)-(c) computeDeriv submissions under the full error "
            "model: every (failing candidate, counterexample input) pair "
            "CEGISMIN blocks, refuted by exploration table vs per-"
            "candidate sweep"
        ),
        "unix_time": time.time(),
        "workloads": workloads,
        "blocking_loop_speedup": sweep_s / table_s if table_s else None,
    }
    _BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nblocking-loop speedup: {payload['blocking_loop_speedup']:.1f}x")


@pytest.fixture(scope="module")
def problem():
    p = get_problem("compDeriv-6.00x")
    verifier = BoundedVerifier(p.spec)
    verifier.inputs  # materialize once for every workload
    return p, verifier


def _capture_blocking_pairs(problem, verifier, tilde, registry):
    """Solve with the explorer on, recording every region it blocks."""
    pairs = []
    original = CandidateSpace.explore_free_region

    def spy(self, args, assignment, deadline=None):
        pairs.append((dict(assignment), args))
        return original(self, args, assignment, deadline=deadline)

    CandidateSpace.explore_free_region = spy
    try:
        result = CegisMinEngine(explorer=True).solve(
            tilde, registry, problem.spec, verifier, timeout_s=120
        )
    finally:
        CandidateSpace.explore_free_region = original
    assert result.status == "fixed"
    return pairs, result


def _space(problem, verifier, tilde, registry):
    return CandidateSpace(
        tilde,
        problem.spec.student_function,
        verifier.candidate_fuel,
        registry=registry,
        compare_stdout=problem.spec.compare_stdout,
    )


@pytest.mark.parametrize("name", list(FIG2))
def test_blocking_loop(problem, name):
    """Refute the engine's actual blocking workload both ways."""
    problem, verifier = problem
    tilde, registry = rewrite_submission(
        parse_program(FIG2[name]), problem.spec, problem.model
    )
    pairs, solve_result = _capture_blocking_pairs(
        problem, verifier, tilde, registry
    )
    space = _space(problem, verifier, tilde, registry)

    table_s = sweep_s = 0.0
    total_leaves = total_sweep_runs = total_failing = 0
    for assignment, args in pairs:
        expected = verifier.expected(args)

        start = time.perf_counter()
        table = space.explore_free_region(args, assignment)
        _, failing = verifier.table_verdict(table)
        table_s += time.perf_counter() - start
        total_leaves += len(table)
        total_failing += len(failing)

        # The sweep must classify the same region: every combination of
        # the free holes the region's paths read.
        free_read = sorted(
            {
                cid
                for leaf in table.leaves
                for cid in leaf.cube
                if registry.info(cid).free
            }
        )
        domains = [range(registry.info(cid).arity) for cid in free_read]
        pinned = {
            cid: branch
            for cid, branch in assignment.items()
            if not registry.info(cid).free
        }
        start = time.perf_counter()
        for combo in itertools.product(*domains):
            total_sweep_runs += 1
            variant = dict(pinned)
            for cid, branch in zip(free_read, combo):
                if branch:
                    variant[cid] = branch
            outcomes_match(expected, space.outcome(variant, args))
        sweep_s += time.perf_counter() - start

    _RESULTS[name] = {
        "solve": {
            "cost": solve_result.cost,
            "sat_calls": solve_result.stats["sat_calls"],
            "blocked_cubes": solve_result.stats["blocked_cubes"],
        },
        "blocking": {
            "regions": len(pairs),
            "table_leaves": total_leaves,
            "failing_leaves": total_failing,
            "sweep_runs": total_sweep_runs,
            "table_s": table_s,
            "sweep_s": sweep_s,
            "speedup": sweep_s / table_s if table_s else None,
        },
    }
    # Sanity: the table visits no more runs than the sweep (reachability
    # can only shrink the region's path count).
    assert total_leaves <= total_sweep_runs


@pytest.mark.parametrize("name", list(FIG2))
def test_end_to_end_ablation(problem, name):
    """Whole-solve wall time, explorer on vs off, for the trajectory."""
    problem, verifier = problem
    tilde, registry = rewrite_submission(
        parse_program(FIG2[name]), problem.spec, problem.model
    )
    timings = {}
    results = {}
    for explorer in (True, False):
        start = time.perf_counter()
        results[explorer] = CegisMinEngine(explorer=explorer).solve(
            tilde, registry, problem.spec, verifier, timeout_s=120
        )
        timings[explorer] = time.perf_counter() - start
    on, off = results[True], results[False]
    assert on.status == off.status == "fixed"
    assert (on.cost, on.minimal) == (off.cost, off.minimal)
    _RESULTS.setdefault(name, {})["end_to_end"] = {
        "explorer_on_s": timings[True],
        "explorer_off_s": timings[False],
        "speedup": timings[False] / timings[True],
        "sat_calls_on": on.stats["sat_calls"],
        "sat_calls_off": off.stats["sat_calls"],
    }


def test_blocking_speedup_contract():
    """The tentpole's perf bar: tables ≥2x the per-candidate sweep on the
    aggregate Fig. 2 counterexample-blocking workload."""
    missing = [name for name in FIG2 if name not in _RESULTS]
    assert not missing, f"blocking benchmarks did not run: {missing}"
    table_s = sum(_RESULTS[n]["blocking"]["table_s"] for n in FIG2)
    sweep_s = sum(_RESULTS[n]["blocking"]["sweep_s"] for n in FIG2)
    speedup = sweep_s / table_s
    assert speedup >= 2.0, (
        f"exploration tables must be ≥2x the per-candidate sweep on the "
        f"Fig. 2 blocking workload, measured {speedup:.2f}x"
    )
