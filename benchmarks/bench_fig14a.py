"""Benchmark: Fig. 14(a) — distribution of the number of corrections.

The paper plots, per problem, how many incorrect attempts needed 1, 2, 3
or 4 coordinated corrections (log scale, decreasing). We regenerate the
histogram from the Table 1 runs and time a multi-correction solve — the
case that motivates symbolic search ("a significant fraction of the
problems require 3 and 4 coordinated corrections").
"""

from benchmarks.conftest import TIMEOUT_S, save_result
from repro.core import generate_feedback
from repro.engines import BoundedVerifier
from repro.problems import get_problem

# The Fig. 2(a) submission under the Section 2.1 simple model needs three
# coordinated corrections — the paper's own multi-correction exemplar.
FIG2A = """def computeDeriv(poly):
    deriv = []
    zero = 0
    if (len(poly) == 1):
        return deriv
    for e in range(0,len(poly)):
        if (poly[e] == 0):
            zero += 1
        else:
            deriv.append(poly[e]*e)
    return deriv
"""

SIMPLE_MODEL = """
rule RETR: return a -> return [0]
rule RANR: range(a1, a2) -> range(a1 + 1, a2)
rule COMPR: a0 == a1 -> False
"""


def test_three_coordinated_corrections(benchmark):
    from repro.eml import parse_error_model

    problem = get_problem("compDeriv-6.00x")
    model = parse_error_model(SIMPLE_MODEL)
    verifier = BoundedVerifier(problem.spec)
    verifier.inputs

    def solve():
        return generate_feedback(
            FIG2A, problem.spec, model, timeout_s=TIMEOUT_S, verifier=verifier
        )

    report = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert report.status == "fixed"
    assert report.cost == 3


def test_corrections_distribution(benchmark, table1_runs):
    from repro.harness import fig14a_distribution, format_fig14a

    distributions = benchmark.pedantic(
        lambda: fig14a_distribution(table1_runs), rounds=1, iterations=1
    )
    text = format_fig14a(distributions)
    save_result("fig14a", text)
    totals = [
        sum(h.get(k, 0) for h in distributions.values()) for k in (1, 2, 3, 4)
    ]
    # The paper's shape: single corrections dominate; counts decrease
    # (log-scale) with the number of corrections.
    assert totals[0] > 0
    assert totals[0] >= totals[1] >= totals[3]
