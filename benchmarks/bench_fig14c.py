"""Benchmark: Fig. 14(c) — generalization of the computeDeriv error model.

The paper runs the compute-deriv model on five other problems: it fixes a
fraction of their incorrect attempts (useful as a starting model) but
fewer than each problem's specialized model.
"""

from benchmarks.conftest import TIMEOUT_S, save_result
from repro.harness import format_fig14c, run_fig14c

TARGETS = (
    "evalPoly-6.00x",
    "iterGCD-6.00x",
    "oddTuples-6.00x",
    "recurPower-6.00x",
    "iterPower-6.00x",
)


def test_generalization(benchmark, bench_config):
    def run():
        return run_fig14c(
            target_names=TARGETS,
            corpus_size=min(bench_config["corpus_size"], 6),
            seed=bench_config["seed"],
            timeout_s=min(TIMEOUT_S, 15),
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig14c", format_fig14c(results))
    # Shape assertions per the paper: the specialized model never loses to
    # the borrowed computeDeriv model, and wins somewhere overall.
    for name, deriv_fixed, own_fixed in results:
        assert own_fixed >= deriv_fixed, name
    assert sum(own for _, _, own in results) > sum(
        deriv for _, deriv, _ in results
    )
